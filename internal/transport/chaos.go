package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig parameterizes the fault injector of a Chaos network. All rates
// are probabilities in [0,1); all decisions are drawn from one seeded stream
// (in send order), so a run with the same seed and the same serial send
// sequence injects exactly the same faults.
type ChaosConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// LossRate silently drops messages.
	LossRate float64
	// DupRate delivers messages twice (duplicates share the original's
	// delay, so receivers see genuine back-to-back duplicates).
	DupRate float64
	// DelayMs delays delivery by DelayMs plus a uniform draw from
	// [0, DelayJitterMs); jitter makes concurrent messages overtake each
	// other.
	DelayMs       float64
	DelayJitterMs float64
	// ReorderRate holds a message for an extra 1–3ms so that later sends can
	// pass it, forcing out-of-order delivery even on an otherwise
	// zero-latency network.
	ReorderRate float64
	// QueueLen is the capacity of each wrapped endpoint's inbox
	// (default 4096).
	QueueLen int
}

// ChaosStats counts the faults a Chaos network has injected so far.
type ChaosStats struct {
	// Dropped counts messages lost to LossRate.
	Dropped int64
	// Duplicated counts messages delivered twice.
	Duplicated int64
	// Delayed counts messages whose delivery was deferred.
	Delayed int64
	// Reordered counts messages held so later sends could overtake them.
	Reordered int64
	// Blackholed counts messages discarded because an involved node was
	// crashed or the sender and receiver were in different partitions.
	Blackholed int64
}

// Chaos wraps any Network with deterministic, composable fault injection:
// loss, delay, duplication, reordering, network partitions, and node
// crash/restart (a crashed node's traffic is blackholed in both directions,
// which is indistinguishable from a process crash to the rest of the
// system). It generalizes the legacy drop/delay knobs of InprocConfig — both
// are backed by the same injector — and works over the in-process and TCP
// networks alike.
type Chaos struct {
	inner Network
	cfg   ChaosConfig
	inj   *injector
	wg    sync.WaitGroup

	mu      sync.Mutex
	crashed map[string]bool
	// group assigns partitioned addresses to partition groups; addresses in
	// different groups cannot communicate, unlisted addresses reach everyone.
	group map[string]int

	dropped, duplicated, delayed, reordered, blackholed atomic.Int64
}

var _ Network = (*Chaos)(nil)

// NewChaos wraps the inner network with fault injection.
func NewChaos(inner Network, cfg ChaosConfig) *Chaos {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 4096
	}
	return &Chaos{
		inner:   inner,
		cfg:     cfg,
		inj:     newInjector(cfg.Seed, cfg.LossRate, cfg.DupRate, cfg.ReorderRate, cfg.DelayMs, cfg.DelayJitterMs),
		crashed: make(map[string]bool),
	}
}

// Endpoint implements Network by wrapping the inner endpoint.
func (c *Chaos) Endpoint(addr string) (Endpoint, error) {
	inner, err := c.inner.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	ep := &chaosEndpoint{
		c:     c,
		inner: inner,
		addr:  addr,
		out:   make(chan Message, c.cfg.QueueLen),
		done:  make(chan struct{}),
	}
	go ep.pump()
	return ep, nil
}

// Crash blackholes the named node: every message it sends or that is sent to
// it is silently discarded until Restart. The node's local state is
// untouched — from its own point of view the network went dark, from its
// peers' point of view it crashed.
func (c *Chaos) Crash(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[addr] = true
}

// Restart reconnects a crashed node.
func (c *Chaos) Restart(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.crashed, addr)
}

// Partition splits the listed addresses into isolated groups: messages
// between different groups are blackholed. Addresses not listed in any group
// keep full connectivity. A new call replaces the previous partition.
func (c *Chaos) Partition(groups ...[]string) {
	m := make(map[string]int)
	for gi, g := range groups {
		for _, a := range g {
			m[a] = gi
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.group = m
}

// Heal removes any partition.
func (c *Chaos) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.group = nil
}

// blocked reports whether traffic from -> to is currently blackholed.
func (c *Chaos) blocked(from, to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed[from] || c.crashed[to] {
		return true
	}
	gf, okf := c.group[from]
	gt, okt := c.group[to]
	return okf && okt && gf != gt
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Dropped:    c.dropped.Load(),
		Duplicated: c.duplicated.Load(),
		Delayed:    c.delayed.Load(),
		Reordered:  c.reordered.Load(),
		Blackholed: c.blackholed.Load(),
	}
}

// Wait blocks until all in-flight delayed deliveries have settled.
func (c *Chaos) Wait() { c.wg.Wait() }

// chaosEndpoint filters one endpoint's traffic through the injector.
type chaosEndpoint struct {
	c     *Chaos
	inner Endpoint
	addr  string
	out   chan Message
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error
}

var _ Endpoint = (*chaosEndpoint)(nil)

// Addr implements Endpoint.
func (e *chaosEndpoint) Addr() string { return e.addr }

// Send implements Endpoint, applying the configured faults. Deliveries that
// were deferred (delay, reorder) cannot report errors; transport failures on
// those are indistinguishable from loss, exactly as on a real network.
func (e *chaosEndpoint) Send(to, kind string, payload any) error {
	if e.c.blocked(e.addr, to) {
		e.c.blackholed.Add(1)
		return nil
	}
	drop, dup, reorder, delay := e.c.inj.plan()
	if drop {
		e.c.dropped.Add(1)
		return nil
	}
	if reorder {
		e.c.reordered.Add(1)
	}
	copies := 1
	if dup {
		e.c.duplicated.Add(1)
		copies = 2
	}
	if delay > 0 {
		e.c.delayed.Add(1)
		for i := 0; i < copies; i++ {
			e.c.wg.Add(1)
			go func() {
				defer e.c.wg.Done()
				time.Sleep(delay)
				_ = e.inner.Send(to, kind, payload)
			}()
		}
		return nil
	}
	var err error
	for i := 0; i < copies; i++ {
		if serr := e.inner.Send(to, kind, payload); err == nil {
			err = serr
		}
	}
	return err
}

// pump forwards inbound messages, discarding them while this node is
// crashed or partitioned away from the sender.
func (e *chaosEndpoint) pump() {
	for m := range e.inner.Recv() {
		if e.c.blocked(m.From, e.addr) {
			e.c.blackholed.Add(1)
			continue
		}
		// Forward without blocking when there is room, so messages buffered
		// at Close time still drain deterministically into the outbox;
		// block (or bail out on close) only when the outbox is full.
		select {
		case e.out <- m:
			continue
		default:
		}
		select {
		case e.out <- m:
		case <-e.done:
			// Closing with a full outbox: discard the rest.
		}
	}
	close(e.out)
}

// Recv implements Endpoint.
func (e *chaosEndpoint) Recv() <-chan Message { return e.out }

// Close implements Endpoint.
func (e *chaosEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.closeErr = e.inner.Close()
	})
	return e.closeErr
}

// injector makes the seeded loss/duplication/reorder/delay decisions. It
// backs both the Chaos wrapper and Inproc's legacy knobs so the two cannot
// drift apart.
type injector struct {
	mu                 sync.Mutex
	rng                *rand.Rand
	loss, dup, reorder float64
	delayMs, jitterMs  float64
}

func newInjector(seed int64, loss, dup, reorder, delayMs, jitterMs float64) *injector {
	return &injector{
		rng:      rand.New(rand.NewSource(seed)),
		loss:     loss,
		dup:      dup,
		reorder:  reorder,
		delayMs:  delayMs,
		jitterMs: jitterMs,
	}
}

// plan decides the fate of one message. Draws are consumed in send order
// from the seeded stream — and only for the fault classes actually
// configured — so a serial sender replays bit-identically, and an
// Inproc-style loss-only configuration consumes the same stream it did
// before the chaos layer existed.
func (j *injector) plan() (drop, dup, reorder bool, delay time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.loss > 0 && j.rng.Float64() < j.loss {
		drop = true
	}
	if j.dup > 0 && j.rng.Float64() < j.dup {
		dup = true
	}
	d := j.delayMs
	if j.jitterMs > 0 {
		d += j.rng.Float64() * j.jitterMs
	}
	if j.reorder > 0 && j.rng.Float64() < j.reorder {
		reorder = true
		d += 1 + 2*j.rng.Float64()
	}
	delay = time.Duration(d * float64(time.Millisecond))
	return drop, dup, reorder, delay
}

// Backoff returns the wait before retry attempt (0-based): base·2^attempt
// with ±25% jitter, capped at max. Shared by the TCP reconnect path and the
// distributed runtime's retransmission timers.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	j := 0.75 + 0.5*rand.Float64()
	return time.Duration(float64(d) * j)
}

// String renders the stats for logs and test failures.
func (s ChaosStats) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d delayed=%d reordered=%d blackholed=%d",
		s.Dropped, s.Duplicated, s.Delayed, s.Reordered, s.Blackholed)
}
