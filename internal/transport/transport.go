// Package transport provides the messaging substrate for the distributed
// LLA runtime (the message-passing system shape of Section 4.1): named
// endpoints exchanging small JSON messages. Two base networks are provided
// — an in-process channel network and a TCP network with length-prefixed
// JSON frames for genuinely distributed deployments (cmd/lla-node) — plus
// Chaos, a wrapper that composes over either of them and injects
// deterministic, seeded faults (loss, delay/jitter, duplication,
// reordering, partitions, node crash/restart) for robustness testing. The
// in-process network's own DelayMs/DropRate knobs are a convenience subset
// backed by the same seeded injector Chaos uses.
package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Message is a routed envelope. Payload is JSON so that both network
// implementations behave identically.
type Message struct {
	// From and To are endpoint addresses (logical names).
	From string `json:"from"`
	To   string `json:"to"`
	// Kind discriminates payload types for the receiver.
	Kind string `json:"kind"`
	// Payload is the JSON-encoded body.
	Payload json.RawMessage `json:"payload"`
}

// Decode unmarshals the payload into out.
func (m Message) Decode(out any) error {
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("transport: decoding %s payload: %w", m.Kind, err)
	}
	return nil
}

// Endpoint is one named party on a network.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() string
	// Send delivers a message to the named endpoint. Payload is marshaled
	// to JSON. Send must not block indefinitely.
	Send(to, kind string, payload any) error
	// Recv returns the channel of inbound messages. It is closed when the
	// endpoint is closed.
	Recv() <-chan Message
	// Close releases the endpoint; subsequent Sends fail.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// Endpoint registers (or returns an error for a duplicate) the named
	// endpoint.
	Endpoint(addr string) (Endpoint, error)
}

// Codec is a pluggable frame codec for networks that move Messages over
// byte streams. internal/wire implements it with the binary protocol of
// PROTOCOL.md; the transport package itself stays codec-agnostic: TCP
// negotiates the codec per connection via the Sniff/Hello/Accept/ReadAck
// handshake and falls back to the legacy length-prefixed JSON framing with
// any peer that declines (or predates) it, and Inproc can round-trip every
// delivery through a codec so in-process tests exercise the same bytes.
//
// Implementations must be safe for concurrent use by every connection of a
// process.
type Codec interface {
	// Name identifies the codec (e.g. "binary") for flags and logs.
	Name() string
	// Encode renders one message as a self-delimiting frame.
	Encode(m Message) ([]byte, error)
	// Read consumes exactly one frame from r and reconstructs the message.
	Read(r *bufio.Reader) (Message, error)
	// Hello returns the fixed-size client handshake blob written once
	// after dialing.
	Hello() []byte
	// ReadAck parses the server's handshake answer; ok=false negotiates
	// the JSON fallback. An error (e.g. a pre-codec peer closing the
	// connection) tells the dialer to reconnect and speak JSON.
	ReadAck(r io.Reader) (ok bool, err error)
	// Sniff reports whether a connection's first four bytes begin a codec
	// hello (as opposed to a legacy JSON length prefix).
	Sniff(prefix []byte) bool
	// Accept consumes the rest of a sniffed hello from r and returns the
	// ack to write back; ok reports whether binary framing was agreed.
	Accept(prefix []byte, r io.Reader) (ack []byte, ok bool, err error)
}

// encode marshals a payload once, shared by the implementations.
func encode(from, to, kind string, payload any) (Message, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("transport: encoding %s payload: %w", kind, err)
	}
	return Message{From: from, To: to, Kind: kind, Payload: raw}, nil
}
