package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds a frame so a corrupt length prefix cannot trigger a
// huge allocation.
const maxFrameBytes = 16 << 20

// TCP is a Network whose endpoints listen on TCP sockets and exchange
// length-prefixed JSON frames. Endpoint addresses are logical names mapped
// to host:port pairs through a static registry (in a real deployment this
// would be service discovery; a static table keeps the reproduction
// self-contained).
type TCP struct {
	mu sync.Mutex
	// registry maps logical address -> host:port.
	registry map[string]string
	// dialTimeout bounds a single connection attempt.
	dialTimeout time.Duration
	// DialRetryWindow keeps retrying refused dials for this long, so nodes
	// of a deployment can start in any order. Zero disables retrying.
	DialRetryWindow time.Duration
	// SendRetryWindow keeps retrying a failed Send for this long, dropping
	// the broken cached connection and re-dialing with capped exponential
	// backoff plus jitter between attempts (the peer may be restarting).
	// Zero falls back to a single immediate reconnect attempt.
	SendRetryWindow time.Duration
	// codec, when set, is negotiated per connection: outbound dials send
	// its hello and fall back to JSON framing if the peer declines or
	// predates it; inbound connections are sniffed for a hello and served
	// legacy JSON when none arrives. Set via SetCodec before creating
	// endpoints.
	codec Codec
}

var _ Network = (*TCP)(nil)

// NewTCP returns a TCP network with the given logical-name registry.
// Entries may also be added later with Register (e.g. after kernel-assigned
// ports are known).
func NewTCP(registry map[string]string) *TCP {
	r := make(map[string]string, len(registry))
	for k, v := range registry {
		r[k] = v
	}
	return &TCP{registry: r, dialTimeout: 5 * time.Second, DialRetryWindow: 15 * time.Second, SendRetryWindow: 10 * time.Second}
}

// SetCodec installs a frame codec (e.g. the internal/wire binary codec) to
// negotiate on every connection. Call before creating endpoints; the
// fallback handshake keeps codec-enabled processes interoperable with
// plain-JSON ones in either direction.
func (t *TCP) SetCodec(c Codec) { t.codec = c }

// Register maps a logical address to a host:port.
func (t *TCP) Register(addr, hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.registry[addr] = hostport
}

// lookup resolves a logical address.
func (t *TCP) lookup(addr string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	hp, ok := t.registry[addr]
	if !ok {
		return "", fmt.Errorf("transport: address %q not in registry", addr)
	}
	return hp, nil
}

// Endpoint implements Network: it binds a listener on the registered
// host:port (a ":0" port is rebound into the registry after binding).
func (t *TCP) Endpoint(addr string) (Endpoint, error) {
	hp, err := t.lookup(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", hp)
	if err != nil {
		return nil, fmt.Errorf("transport: listening for %q on %s: %w", addr, hp, err)
	}
	t.Register(addr, ln.Addr().String())
	ep := &tcpEndpoint{
		net:      t,
		addr:     addr,
		ln:       ln,
		in:       make(chan Message, 1024),
		conns:    make(map[string]*tcpConn),
		jsonOnly: make(map[string]bool),
		inbound:  make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// tcpEndpoint is one listener plus a cache of outbound connections.
type tcpEndpoint struct {
	net  *TCP
	addr string
	ln   net.Listener
	in   chan Message
	done chan struct{}
	wg   sync.WaitGroup

	mu sync.Mutex
	// conns caches outbound connections by destination name; inbound holds
	// accepted connections so Close can unblock their readers. jsonOnly
	// remembers destinations whose handshake failed outright (a pre-codec
	// peer closes on the hello), so reconnects skip straight to JSON.
	conns    map[string]*tcpConn
	jsonOnly map[string]bool
	inbound  map[net.Conn]struct{}
	closed   bool
}

// tcpConn is one outbound connection plus its negotiated framing mode.
type tcpConn struct {
	nc net.Conn
	// binary is true when the codec handshake agreed on binary frames;
	// false speaks legacy length-prefixed JSON.
	binary bool
}

var _ Endpoint = (*tcpEndpoint)(nil)

// Addr implements Endpoint.
func (e *tcpEndpoint) Addr() string { return e.addr }

// acceptLoop accepts inbound connections and spawns a reader per connection.
func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// readLoop decodes frames from one connection into the inbox. With a codec
// installed, the connection's first four bytes are sniffed: a codec hello
// runs the negotiation handshake, anything else (a legacy JSON length
// prefix) is served the plain JSON framing — Peek does not consume, so the
// legacy path re-reads those same bytes as its first frame.
func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	cod := e.net.codec
	negotiated := false
	if cod != nil {
		prefix, err := br.Peek(4)
		if err != nil {
			return
		}
		if cod.Sniff(prefix) {
			if _, err := br.Discard(4); err != nil {
				return
			}
			ack, ok, err := cod.Accept(prefix, br)
			if err != nil {
				return // corrupt hello: drop the connection
			}
			if _, err := conn.Write(ack); err != nil {
				return
			}
			negotiated = ok
		}
	}
	for {
		var msg Message
		var err error
		if negotiated {
			msg, err = readNegotiated(br, cod)
		} else {
			msg, err = readFrame(br)
		}
		if err != nil {
			return
		}
		select {
		case e.in <- msg:
		case <-e.done:
			return
		}
	}
}

// readNegotiated reads one frame from a binary-negotiated connection.
// Binary streams may interleave legacy JSON frames (e.g. a payload the
// codec declined to encode): the first byte discriminates, because a JSON
// frame's big-endian length prefix starts with 0x00 under the 16 MiB cap
// while binary frames start with the codec's nonzero magic.
func readNegotiated(br *bufio.Reader, cod Codec) (Message, error) {
	b, err := br.Peek(1)
	if err != nil {
		return Message{}, err
	}
	if b[0] == 0 {
		return readFrame(br)
	}
	return cod.Read(br)
}

// Send implements Endpoint. Connections are cached per destination; a write
// failure drops the broken connection and reconnects with capped exponential
// backoff plus jitter for up to SendRetryWindow (the peer may be
// restarting). Non-transient failures — unknown destination, unmarshalable
// payload, closed endpoint — fail immediately.
func (e *tcpEndpoint) Send(to, kind string, payload any) error {
	if e.isClosed() {
		return fmt.Errorf("transport: endpoint %q closed", e.addr)
	}
	if _, err := e.net.lookup(to); err != nil {
		return err // unknown destination: retrying cannot help
	}
	msg, err := encode(e.addr, to, kind, payload)
	if err != nil {
		return err
	}
	err = e.writeMsg(to, msg)
	if err == nil {
		return nil
	}
	deadline := time.Now().Add(e.net.SendRetryWindow)
	for attempt := 0; ; attempt++ {
		e.dropConn(to)
		if e.isClosed() {
			return err
		}
		if attempt > 0 && !time.Now().Before(deadline) {
			return err
		}
		if attempt > 0 {
			time.Sleep(Backoff(attempt-1, 25*time.Millisecond, time.Second))
		}
		if err = e.writeMsg(to, msg); err == nil {
			return nil
		}
	}
}

// isClosed reports whether Close has run.
func (e *tcpEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// writeMsg encodes the message for the destination's negotiated framing
// and writes it. Encoding happens per attempt because a reconnect can
// renegotiate the mode (e.g. the peer restarted as a different build).
func (e *tcpEndpoint) writeMsg(to string, msg Message) error {
	c, err := e.conn(to)
	if err != nil {
		return err
	}
	var frame []byte
	if c.binary {
		frame, err = e.net.codec.Encode(msg)
		if err != nil {
			// Unencodable payload: interleave a legacy JSON frame — binary
			// readers discriminate frames by first byte (see readNegotiated).
			frame, err = encodeFrame(msg)
		}
	} else {
		frame, err = encodeFrame(msg)
	}
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err = c.nc.Write(frame)
	return err
}

// conn returns the cached connection to the destination, dialing (and
// running the codec handshake) if needed.
func (e *tcpEndpoint) conn(to string) (*tcpConn, error) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	jsonOnly := e.jsonOnly[to]
	e.mu.Unlock()

	nc, err := e.dial(to)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{nc: nc}
	if cod := e.net.codec; cod != nil && !jsonOnly {
		ok, herr := clientHandshake(nc, cod, e.net.dialTimeout)
		if herr != nil {
			// The peer is a pre-codec build: it read the hello as an
			// invalid frame and closed. Remember, redial, speak JSON.
			nc.Close()
			e.mu.Lock()
			e.jsonOnly[to] = true
			e.mu.Unlock()
			return e.conn(to)
		}
		c.binary = ok
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		nc.Close()
		return nil, fmt.Errorf("transport: endpoint %q closed", e.addr)
	}
	if prev, ok := e.conns[to]; ok {
		// Lost a dial race; keep the first connection.
		nc.Close()
		return prev, nil
	}
	e.conns[to] = c
	return c, nil
}

// dial opens a raw connection to the destination, retrying refused dials
// within the window: the peer process may simply not have bound its
// listener yet (deployments start in any order).
func (e *tcpEndpoint) dial(to string) (net.Conn, error) {
	hp, err := e.net.lookup(to)
	if err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", hp, e.net.dialTimeout)
	deadline := time.Now().Add(e.net.DialRetryWindow)
	for err != nil && time.Now().Before(deadline) {
		if e.isClosed() {
			break
		}
		time.Sleep(100 * time.Millisecond)
		c, err = net.DialTimeout("tcp", hp, e.net.dialTimeout)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %q (%s): %w", to, hp, err)
	}
	return c, nil
}

// clientHandshake writes the codec hello and waits (bounded) for the ack.
func clientHandshake(nc net.Conn, cod Codec, timeout time.Duration) (bool, error) {
	if _, err := nc.Write(cod.Hello()); err != nil {
		return false, err
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if err := nc.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return false, err
	}
	defer nc.SetReadDeadline(time.Time{})
	return cod.ReadAck(nc)
}

// dropConn evicts a broken cached connection.
func (e *tcpEndpoint) dropConn(to string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[to]; ok {
		c.nc.Close()
		delete(e.conns, to)
	}
}

// Recv implements Endpoint.
func (e *tcpEndpoint) Recv() <-chan Message { return e.in }

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, c := range e.conns {
		c.nc.Close()
	}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()

	close(e.done)
	err := e.ln.Close()
	e.wg.Wait()
	close(e.in)
	return err
}

// encodeFrame renders a message as a length-prefixed JSON frame.
func encodeFrame(msg Message) ([]byte, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("transport: encoding frame: %w", err)
	}
	if len(body) > maxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// readFrame reads one length-prefixed JSON frame. The body buffer grows only
// as bytes actually arrive, so a corrupt or hostile length prefix on a
// truncated stream cannot force a large up-front allocation.
func readFrame(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrameBytes {
		return Message{}, errors.New("transport: invalid frame length")
	}
	var buf bytes.Buffer
	if n <= 64<<10 {
		buf.Grow(int(n)) // typical small frame: one exact allocation
	}
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return Message{}, fmt.Errorf("transport: truncated frame: %w", err)
	}
	var msg Message
	if err := json.Unmarshal(buf.Bytes(), &msg); err != nil {
		return Message{}, fmt.Errorf("transport: decoding frame: %w", err)
	}
	return msg, nil
}
