package transport

import (
	"testing"
	"time"
)

// collect drains n's endpoint b until it closes, returning the payload Ns in
// arrival order.
func collectNs(t *testing.T, ep Endpoint) []int {
	t.Helper()
	var out []int
	for m := range ep.Recv() {
		var p ping
		if err := m.Decode(&p); err != nil {
			t.Fatal(err)
		}
		out = append(out, p.N)
	}
	return out
}

// A serial sender over the same seed must see the identical loss pattern.
func TestChaosLossDeterministic(t *testing.T) {
	run := func() []int {
		c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{Seed: 9, LossRate: 0.3})
		a, err := c.Endpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Endpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		for i := 0; i < 200; i++ {
			if err := a.Send("b", "x", ping{N: i}); err != nil {
				t.Fatal(err)
			}
		}
		b.Close()
		return collectNs(t, b)
	}
	first, second := run(), run()
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("loss injection inactive: delivered %d of 200", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("non-deterministic loss: %d vs %d delivered", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic delivery at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestChaosDuplication(t *testing.T) {
	c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{Seed: 1, DupRate: 1})
	a, _ := c.Endpoint("a")
	b, _ := c.Endpoint("b")
	defer a.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", "x", ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	got := collectNs(t, b)
	if len(got) != 2*n {
		t.Fatalf("delivered %d messages at DupRate=1, want %d", len(got), 2*n)
	}
	if s := c.Stats(); s.Duplicated != n {
		t.Errorf("stats: %s, want %d duplicated", s, n)
	}
}

func TestChaosDelayAndReorder(t *testing.T) {
	c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{Seed: 4, DelayMs: 2, DelayJitterMs: 4, ReorderRate: 0.5})
	a, _ := c.Endpoint("a")
	b, _ := c.Endpoint("b")
	defer a.Close()
	defer b.Close()
	const n = 100
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := a.Send("b", "x", ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]int, 0, n)
	for len(got) < n {
		select {
		case m := <-b.Recv():
			var p ping
			if err := m.Decode(&p); err != nil {
				t.Fatal(err)
			}
			got = append(got, p.N)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d of %d", len(got), n)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~2ms of injected delay", elapsed)
	}
	inOrder := true
	for i := 1; i < n; i++ {
		if got[i] < got[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("jittered delay + 50% reorder delivered fully in order")
	}
	c.Wait()
}

func TestChaosCrashRestartBlackholesBothDirections(t *testing.T) {
	c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{Seed: 2})
	a, _ := c.Endpoint("a")
	b, _ := c.Endpoint("b")
	defer a.Close()
	defer b.Close()

	c.Crash("b")
	if err := a.Send("b", "x", ping{N: 1}); err != nil {
		t.Fatalf("send to crashed node must be silent loss, got %v", err)
	}
	if err := b.Send("a", "x", ping{N: 2}); err != nil {
		t.Fatalf("send from crashed node must be silent loss, got %v", err)
	}
	select {
	case m := <-a.Recv():
		t.Fatalf("message %v leaked through a crash", m)
	case <-time.After(20 * time.Millisecond):
	}
	if s := c.Stats(); s.Blackholed != 2 {
		t.Errorf("stats: %s, want 2 blackholed", s)
	}

	c.Restart("b")
	if err := a.Send("b", "x", ping{N: 3}); err != nil {
		t.Fatal(err)
	}
	var p ping
	if err := recvOne(t, b).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.N != 3 {
		t.Fatalf("post-restart payload = %+v", p)
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{Seed: 2})
	a, _ := c.Endpoint("a")
	b, _ := c.Endpoint("b")
	x, _ := c.Endpoint("x") // unlisted: reaches everyone
	defer a.Close()
	defer b.Close()
	defer x.Close()

	c.Partition([]string{"a"}, []string{"b"})
	if err := a.Send("b", "x", ping{N: 1}); err != nil {
		t.Fatalf("cross-partition send must be silent loss, got %v", err)
	}
	if err := x.Send("b", "x", ping{N: 2}); err != nil {
		t.Fatal(err)
	}
	var p ping
	if err := recvOne(t, b).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.N != 2 {
		t.Fatalf("partition delivered wrong message: %+v", p)
	}

	c.Heal()
	if err := a.Send("b", "x", ping{N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := recvOne(t, b).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.N != 3 {
		t.Fatalf("post-heal payload = %+v", p)
	}
}

// The chaos wrapper composes with the TCP network, not just inproc.
func TestChaosOverTCP(t *testing.T) {
	inner := NewTCP(map[string]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"})
	testRoundTrip(t, NewChaos(inner, ChaosConfig{Seed: 1}))
}

// A fault-free chaos network is a transparent pass-through, including Send
// errors for unknown destinations.
func TestChaosPassthroughErrors(t *testing.T) {
	c := NewChaos(NewInproc(InprocConfig{}), ChaosConfig{})
	a, err := c.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("ghost", "x", ping{}); err == nil {
		t.Fatal("send to unknown endpoint should fail")
	}
	if _, err := c.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint should fail")
	}
}
