// Codec negotiation tests live in an external test package so they can use
// the real internal/wire codec (wire imports transport, so an in-package
// test would cycle).
package transport_test

import (
	"net"
	"testing"
	"time"

	"lla/internal/obs"
	"lla/internal/transport"
	"lla/internal/wire"
)

// reservePort grabs a free localhost port. There is a tiny window before
// the test rebinds it; acceptable for a local test.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hp := ln.Addr().String()
	ln.Close()
	return hp
}

func recvMsg(t *testing.T, ch <-chan transport.Message) transport.Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("inbox closed")
		}
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return transport.Message{}
}

type pricePayload struct {
	Round    int     `json:"round"`
	Resource string  `json:"resource"`
	Mu       float64 `json:"mu,omitempty"`
}

// exchange sends one price payload a->b and one b->a and asserts both
// arrive intact.
func exchange(t *testing.T, a, b transport.Endpoint) {
	t.Helper()
	want := pricePayload{Round: 7, Resource: "cpu0", Mu: 1.5}
	if err := a.Send(b.Addr(), "price", want); err != nil {
		t.Fatalf("a->b send: %v", err)
	}
	m := recvMsg(t, b.Recv())
	var got pricePayload
	if err := m.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if m.From != a.Addr() || m.Kind != "price" || got != want {
		t.Fatalf("a->b got %+v via %+v", got, m)
	}
	if err := b.Send(a.Addr(), "hello", map[string]int{"n": 1}); err != nil {
		t.Fatalf("b->a send: %v", err)
	}
	if m := recvMsg(t, a.Recv()); m.Kind != "hello" {
		t.Fatalf("b->a got kind %q", m.Kind)
	}
}

// negotiations reads the lla_wire_negotiations_total counter by outcome.
func negotiations(reg *obs.Registry, outcome string) int64 {
	return reg.Counter("lla_wire_negotiations_total", "Codec negotiations, by outcome.", "outcome", outcome).Value()
}

func TestTCPBinaryCodecEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	codec := wire.NewCodec(nil)
	codec.Observe(reg)
	n := transport.NewTCP(map[string]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"})
	n.SetCodec(codec)
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	exchange(t, a, b)
	if got := negotiations(reg, "binary"); got == 0 {
		t.Fatal("no binary negotiation recorded")
	}
	frames := reg.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "decode").Value()
	if frames == 0 {
		t.Fatal("no binary frames decoded; traffic fell back to JSON")
	}
}

// TestTCPCodecClientLegacyServer: a codec-enabled client dialing a
// pre-codec server sees its hello rejected (the magic reads as an invalid
// frame length), redials, and interoperates on JSON.
func TestTCPCodecClientLegacyServer(t *testing.T) {
	srvPort := reservePort(t)
	cliPort := reservePort(t)

	srvNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	srv, err := srvNet.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	codec := wire.NewCodec(nil)
	codec.Observe(reg)
	cliNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	cliNet.SetCodec(codec)
	cli, err := cliNet.Endpoint("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	exchange(t, cli, srv)
	if got := negotiations(reg, "json"); got == 0 {
		t.Fatal("no JSON fallback recorded")
	}
	if got := negotiations(reg, "binary"); got != 0 {
		t.Fatalf("binary negotiation against a legacy server: %d", got)
	}
}

// TestTCPLegacyClientCodecServer: a pre-codec client's first bytes are a
// JSON length prefix; the codec-enabled server sniffs, finds no hello, and
// serves legacy framing.
func TestTCPLegacyClientCodecServer(t *testing.T) {
	srvPort := reservePort(t)
	cliPort := reservePort(t)

	srvNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	srvNet.SetCodec(wire.NewCodec(nil))
	srv, err := srvNet.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	cli, err := cliNet.Endpoint("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	exchange(t, cli, srv)
}

// TestTCPDictMismatchNegotiatesJSON: peers with disagreeing dictionaries
// complete the handshake (no redial) but agree to speak JSON.
func TestTCPDictMismatchNegotiatesJSON(t *testing.T) {
	srvPort := reservePort(t)
	cliPort := reservePort(t)

	dictA, err := wire.NewDict([]string{"cpu0"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dictB, err := wire.NewDict([]string{"gpu9"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	srvNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	srvNet.SetCodec(wire.NewCodec(dictA))
	srv, err := srvNet.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	codec := wire.NewCodec(dictB)
	codec.Observe(reg)
	cliNet := transport.NewTCP(map[string]string{"srv": srvPort, "cli": cliPort})
	cliNet.SetCodec(codec)
	cli, err := cliNet.Endpoint("cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	exchange(t, cli, srv)
	if got := negotiations(reg, "json"); got == 0 {
		t.Fatal("dictionary mismatch did not record a JSON negotiation")
	}
}

// TestInprocCodecRoundTrip: Inproc.SetCodec pushes every delivery through
// the binary encode/decode cycle.
func TestInprocCodecRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	codec := wire.NewCodec(nil)
	codec.Observe(reg)
	n := transport.NewInproc(transport.InprocConfig{})
	n.SetCodec(codec)
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b)
	if reg.Counter("lla_wire_frames_total", "Binary frames, by direction.", "dir", "decode").Value() == 0 {
		t.Fatal("inproc deliveries bypassed the codec")
	}
}
