package transport

import "testing"

func BenchmarkInprocRoundTrip(b *testing.B) {
	n := NewInproc(InprocConfig{QueueLen: 4})
	a, err := n.Endpoint("a")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c, err := n.Endpoint("b")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := map[string]float64{"mu": 1.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("b", "price", payload); err != nil {
			b.Fatal(err)
		}
		<-c.Recv()
	}
}

func BenchmarkFrameCodec(b *testing.B) {
	msg, err := encode("a", "b", "latency", map[string]float64{"s1": 9.74, "s2": 13.82})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFrame(msg); err != nil {
			b.Fatal(err)
		}
	}
}
