package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"time"
)

// InprocConfig tunes the in-process network's fault injection. DelayMs and
// DropRate are legacy knobs kept for convenience — they are backed by the
// same seeded injector as the general Chaos wrapper, which additionally
// offers duplication, reordering, partitions, and node crash/restart.
type InprocConfig struct {
	// DelayMs delivers every message after a fixed delay (0 = immediate,
	// synchronous ordering per sender-receiver pair).
	DelayMs float64
	// DropRate in [0,1) silently drops messages at random (seeded).
	DropRate float64
	// Seed drives the drop decisions.
	Seed int64
	// QueueLen is the per-endpoint inbox capacity (default 1024).
	QueueLen int
	// RegistrationWait makes Send retry for up to this duration when the
	// destination endpoint is not registered yet, mirroring the TCP
	// transport's dial-retry so that independently started nodes can come
	// up in any order. Zero fails unknown destinations immediately.
	RegistrationWait time.Duration
}

// Inproc is a channel-based Network for tests and single-process runs.
type Inproc struct {
	cfg InprocConfig

	inj *injector
	// codec, when set, round-trips every delivery through an encode/decode
	// cycle, so in-process runs exercise exactly the bytes a TCP deployment
	// would ship (the wire-codec chaos tests rely on this).
	codec Codec

	mu        sync.Mutex
	endpoints map[string]*inprocEndpoint
	wg        sync.WaitGroup
}

var _ Network = (*Inproc)(nil)

// NewInproc returns an in-process network.
func NewInproc(cfg InprocConfig) *Inproc {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 1024
	}
	return &Inproc{
		cfg:       cfg,
		inj:       newInjector(cfg.Seed, cfg.DropRate, 0, 0, cfg.DelayMs, 0),
		endpoints: make(map[string]*inprocEndpoint),
	}
}

// Endpoint implements Network.
func (n *Inproc) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	if _, dup := n.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: endpoint %q already registered", addr)
	}
	ep := &inprocEndpoint{
		net:  n,
		addr: addr,
		in:   make(chan Message, n.cfg.QueueLen),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// Wait blocks until all in-flight delayed deliveries have settled.
func (n *Inproc) Wait() { n.wg.Wait() }

// SetCodec makes every delivery round-trip through the codec's frame
// encoding. Set before any endpoint sends; the codec must be safe for
// concurrent use (deliveries run on sender goroutines).
func (n *Inproc) SetCodec(c Codec) { n.codec = c }

// deliver routes a message, applying the injector's loss and delay plan.
func (n *Inproc) deliver(msg Message) error {
	if n.codec != nil {
		frame, err := n.codec.Encode(msg)
		if err != nil {
			return fmt.Errorf("transport: inproc codec encode: %w", err)
		}
		if msg, err = n.codec.Read(bufio.NewReader(bytes.NewReader(frame))); err != nil {
			return fmt.Errorf("transport: inproc codec decode: %w", err)
		}
	}
	n.mu.Lock()
	dst, ok := n.endpoints[msg.To]
	n.mu.Unlock()
	drop, _, _, delay := n.inj.plan()
	if !ok && n.cfg.RegistrationWait > 0 {
		// The destination may simply not have started yet.
		deadline := time.Now().Add(n.cfg.RegistrationWait)
		for !ok && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
			n.mu.Lock()
			dst, ok = n.endpoints[msg.To]
			n.mu.Unlock()
		}
	}
	if !ok {
		return fmt.Errorf("transport: no endpoint %q", msg.To)
	}
	if drop {
		return nil // injected loss: silently dropped
	}
	if delay > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			time.Sleep(delay)
			dst.push(msg)
		}()
		return nil
	}
	dst.push(msg)
	return nil
}

// inprocEndpoint is one party on an Inproc network.
type inprocEndpoint struct {
	net  *Inproc
	addr string
	in   chan Message

	mu     sync.Mutex
	closed bool
}

var _ Endpoint = (*inprocEndpoint)(nil)

// Addr implements Endpoint.
func (e *inprocEndpoint) Addr() string { return e.addr }

// Send implements Endpoint.
func (e *inprocEndpoint) Send(to, kind string, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: endpoint %q closed", e.addr)
	}
	msg, err := encode(e.addr, to, kind, payload)
	if err != nil {
		return err
	}
	return e.net.deliver(msg)
}

// Recv implements Endpoint.
func (e *inprocEndpoint) Recv() <-chan Message { return e.in }

// push enqueues an inbound message, dropping it if the endpoint has closed.
func (e *inprocEndpoint) push(msg Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	// Block-free: a full inbox drops the oldest semantics would complicate
	// reasoning; the inbox is sized for the runtime's round-based protocol,
	// so blocking here indicates a protocol bug. Fail loudly instead.
	select {
	case e.in <- msg:
	default:
		panic(fmt.Sprintf("transport: inbox overflow at %q (protocol bug or undersized queue)", e.addr))
	}
}

// Close implements Endpoint.
func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.in)
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	return nil
}
