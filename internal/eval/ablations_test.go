package eval

import (
	"strconv"
	"testing"
)

func TestPercentilesExperiment(t *testing.T) {
	res, err := Percentiles(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Tables[0].Rows))
	}
	for _, row := range res.Tables[0].Rows {
		p, _ := strconv.ParseFloat(row[0], 64)
		cov, _ := strconv.ParseFloat(row[3], 64)
		if cov < p-2 {
			t.Errorf("target p=%v: coverage %v below target", p, cov)
		}
	}
}

func TestAblationExperiments(t *testing.T) {
	for _, run := range []func(Options) (*Result, error){AblationWeights, AblationBaselines, Adaptation} {
		res, err := run(Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables) == 0 || res.Render() == "" {
			t.Errorf("%s: empty result", res.ID)
		}
	}
}
