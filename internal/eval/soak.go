package eval

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/dist"
	"lla/internal/obs"
	rec "lla/internal/recover"
	"lla/internal/stats"
	"lla/internal/transport"
	"lla/internal/workload"
)

// The soak experiment (DESIGN.md §13, EXPERIMENTS.md) is the chaos
// endurance run behind the crash-recovery subsystem: a long churn trace is
// driven through repeated checkpoint/crash/restore cycles of the engine and
// admission controller, then the distributed runtime is run under chaos with
// scheduled coordinator crashes, zombie-generation probes, and epoch
// recovery from the same checkpoint directory. It asserts the robustness
// acceptance bar end to end: zero critical-time violations across every
// recovery, bitwise state equality at each restore, warm recovery strictly
// cheaper than cold re-convergence, stale-generation frames fenced, and a
// flat allocation rate over the whole run.

// soakPlan is the budget set of one soak run.
type soakPlan struct {
	horizonMs       float64
	minEvents       int // full mode asserts the trace reaches this
	checkpointEvery int // events between periodic saves
	crashEveryCk    int // crash at every Nth periodic checkpoint
	distRounds      int
	distCrashes     []dist.Crash
}

// soakPlanFor sizes the run: the full soak drives ≥10^5 churn events, the
// quick one a few hundred (for tests and the CI smoke job).
func soakPlanFor(opts Options) soakPlan {
	p := soakPlan{
		horizonMs:       2_600_000,
		minEvents:       100_000,
		checkpointEvery: 2500,
		crashEveryCk:    4,
		distRounds:      400,
		distCrashes: []dist.Crash{
			{AfterEmit: 5, DownFor: 2 * time.Millisecond},
			{AfterEmit: 15, DownFor: 2 * time.Millisecond},
			{AfterEmit: 25, DownFor: 2 * time.Millisecond},
		},
	}
	if opts.Quick {
		p.horizonMs = 18_000
		p.minEvents = 500
		p.checkpointEvery = 100
		p.crashEveryCk = 2
		p.distRounds = 160
	}
	if opts.CheckpointEvery > 0 {
		p.checkpointEvery = opts.CheckpointEvery
	}
	return p
}

// soakState is the live engine/controller pair the replay drives; a crash
// cycle replaces both with instances rebuilt from the newest checkpoint.
type soakState struct {
	eng  *core.Engine
	ctrl *admit.Controller
}

// soakAdmitConfig is the gated admission policy with a trial budget small
// enough to keep a 10^5-event replay tractable.
func soakAdmitConfig() admit.Config {
	return admit.Config{TrialIters: 600}
}

// newSoakController attaches a gated admission controller to eng.
func newSoakController(eng *core.Engine, o *obs.Observer) *admit.Controller {
	ctrl := admit.New(eng, soakAdmitConfig())
	ctrl.UsePlacer(admit.NewPlacer(admit.PlacerConfig{}))
	if o != nil {
		ctrl.Observe(o)
	}
	return ctrl
}

// Soak runs the crash/recovery endurance experiment. Phase 1 replays the
// churn trace against the live engine, checkpointing periodically and
// crash/restoring on schedule (alternating restore worker counts to exercise
// the bitwise contract across sharding). Phase 2 runs the distributed
// runtime under chaos with coordinator crashes, the zombie probe, and epoch
// recovery from the phase-1 checkpoint directory.
func Soak(opts Options) (*Result, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 7
	}
	plan := soakPlanFor(opts)
	trace, err := workload.GenerateChurn(workload.ChurnConfig{
		Seed:               seed,
		MeanInterarrivalMs: 40,
		MeanLifetimeMs:     260,
		HorizonMs:          plan.horizonMs,
		Templates:          churnTemplates,
	})
	if err != nil {
		return nil, err
	}

	dir := opts.CheckpointDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "lla-soak-ckpt-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	writer, err := rec.NewWriter(dir, 0)
	if err != nil {
		return nil, err
	}
	// Carry the directory's coordinator generation forward: every save below
	// re-stamps the highest epoch seen so far, so pruning old checkpoints
	// never loses the monotone generation counter (recover.Latest is what a
	// restarted coordinator seeds its epoch from).
	var baseEpoch uint64
	if cp, _, err := rec.Latest(dir); err == nil {
		baseEpoch = cp.Epoch
	}
	var rm *obs.RecoverMetrics
	if opts.Observer != nil && opts.Observer.Metrics != nil {
		rm = obs.NewRecoverMetrics(opts.Observer.Metrics)
	}

	// Phase 1: engine-level churn with crash/restore cycles.
	eng, err := core.NewEngine(churnPool(), opts.engineConfig())
	if err != nil {
		return nil, err
	}
	opts.attach(eng)
	warmSnap, warmOK := eng.RunUntilConverged(3000, 1e-7, 20, 1e-3)
	coldRounds := -1
	if warmOK {
		coldRounds = warmSnap.Iteration
	}
	st := soakState{eng: eng, ctrl: newSoakController(eng, opts.Observer)}
	defer func() { st.eng.Close() }()

	save := func(converged bool) error {
		path, err := writer.Save(rec.Capture(st.eng, rec.CaptureOptions{
			Epoch:     baseEpoch,
			Seed:      seed,
			Converged: converged,
			Admit:     st.ctrl,
		}))
		if err != nil {
			return err
		}
		if rm != nil {
			rm.Checkpoints.Inc()
			rm.CheckpointBytes.Set(float64(writer.LastBytes()))
		}
		if opts.Observer != nil {
			opts.Observer.Emit(obs.Event{Kind: obs.EventCheckpoint,
				Iteration: st.eng.Probe().Iteration, Value: float64(writer.LastBytes()), Detail: path})
		}
		return nil
	}
	// On-converged checkpoint: the warm state every crash recovers toward.
	if err := save(warmOK); err != nil {
		return nil, err
	}

	const tol = 1e-3
	var (
		events, offered, admitted, rejected, departures int
		violations, restores, bitwiseMismatches         int
		warmRoundsMax                                   int
		warmRoundsSum                                   int
		warmFailures                                    int
	)
	utilSeries := stats.NewSeries("utility-soak")
	warmSeries := stats.NewSeries("warm-recovery-rounds")

	// Allocation-flatness probes: mallocs-per-event over an early and a late
	// window (the middle half boundaries keep warmup and drain effects out).
	var msLo, msMid1, msMid2, msHi runtime.MemStats
	q1, q2, q3 := len(trace)/10, len(trace)/2, len(trace)*9/10
	runtime.ReadMemStats(&msLo)

	crash := func() error {
		// WAL discipline: the crash point itself is durably checkpointed
		// (periodic saves already happened; this is the "on shutdown" save a
		// real deployment's signal handler performs).
		if err := save(false); err != nil {
			return err
		}
		cp, path, err := rec.Latest(dir)
		if err != nil {
			return err
		}
		// Alternate restore worker counts: the checkpoint contract is bitwise
		// identity under every sharding.
		workers := 1
		if restores%2 == 1 {
			workers = 4
		}
		restored, err := rec.Restore(cp, core.Config{Workers: workers, Sparse: opts.Sparse})
		if err != nil {
			return err
		}
		if restored.Probe() != st.eng.Probe() {
			bitwiseMismatches++
		}
		if rm != nil {
			rm.Restores.Inc()
		}
		if opts.Observer != nil {
			opts.Observer.Emit(obs.Event{Kind: obs.EventRestore,
				Iteration: restored.Probe().Iteration, Detail: path})
		}
		// Warm recovery: rounds until the restored engine satisfies the same
		// convergence criterion the cold baseline was measured against.
		pre := restored.Probe().Iteration
		wSnap, wOK := restored.RunUntilConverged(3000, 1e-7, 20, 1e-3)
		warm := wSnap.Iteration - pre
		if !wOK {
			warmFailures++
		}
		warmRoundsSum += warm
		if warm > warmRoundsMax {
			warmRoundsMax = warm
		}
		warmSeries.Append(float64(events), float64(warm))
		if rm != nil {
			rm.RecoveryRounds.Observe(float64(warm))
		}
		// The crashed instance is gone: the restored engine and a controller
		// rebuilt from the checkpointed quarantine clocks take over.
		ctrl := newSoakController(restored, opts.Observer)
		if cp.Admit != nil {
			ctrl.RestoreState(*cp.Admit)
		}
		st.eng.Close()
		st = soakState{eng: restored, ctrl: ctrl}
		restores++
		return nil
	}

	for i, ev := range trace {
		switch i {
		case q1:
			runtime.ReadMemStats(&msMid1)
		case q2:
			runtime.ReadMemStats(&msMid2)
		case q3:
			runtime.ReadMemStats(&msHi)
		}
		if ev.Arrival {
			offered++
			tpl := churnTemplates[ev.Template]
			ph := make([]string, len(tpl.StageExecMs))
			for i := range ph {
				ph[i] = "r0"
			}
			t, curve, err := tpl.Instantiate(ev.Name, ph)
			if err != nil {
				return nil, err
			}
			d, err := st.ctrl.OfferPlaced(admit.Candidate{Task: t, Curve: curve})
			if err != nil {
				return nil, err
			}
			if d.Admitted {
				admitted++
			} else {
				rejected++
			}
		} else {
			d, err := st.ctrl.Remove(ev.Name)
			if err != nil {
				return nil, err
			}
			if d.Admitted {
				departures++
			}
		}
		events++
		pr := st.eng.Probe()
		utilSeries.Append(float64(events), pr.Utility)
		if pr.MaxResourceViolation > tol || pr.MaxPathViolationFrac > tol {
			violations++
		}
		if events%plan.checkpointEvery == 0 {
			ck := events / plan.checkpointEvery
			if ck%plan.crashEveryCk == 0 {
				if err := crash(); err != nil {
					return nil, err
				}
			} else if err := save(false); err != nil {
				return nil, err
			}
		}
	}
	allocEarly := float64(msMid1.Mallocs-msLo.Mallocs) / float64(max(q1, 1))
	allocLate := float64(msHi.Mallocs-msMid2.Mallocs) / float64(max(q3-q2, 1))
	allocsFlat := allocLate <= 2*allocEarly

	// Phase 2: distributed runtime under chaos with coordinator failover.
	// Loss stays at zero here — coordinator downtime already destroys
	// reports, and the crash schedule keys off emitted rounds — while
	// duplication, delay and reordering keep stale pre-crash frames racing
	// every rejoin.
	inner := transport.NewInproc(transport.InprocConfig{QueueLen: 16384})
	if opts.Wire == "binary" {
		var reg *obs.Registry
		if opts.Observer != nil {
			reg = opts.Observer.Metrics
		}
		inner.SetCodec(dist.WireCodec(workload.Base(), reg))
	}
	ch := transport.NewChaos(inner, transport.ChaosConfig{
		Seed:          seed,
		DupRate:       0.05,
		DelayMs:       0.3,
		DelayJitterMs: 0.3,
		ReorderRate:   0.05,
		QueueLen:      16384,
	})
	rt, err := dist.New(workload.Base(), core.Config{}, ch)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rt.SetFaultPolicy(dist.FaultPolicy{
		RetransmitAfter: 2 * time.Millisecond,
		RetransmitMax:   40 * time.Millisecond,
		LeaseAfter:      20 * time.Millisecond,
	})
	if opts.Observer != nil {
		rt.Observe(opts.Observer)
	}
	dres, err := rt.RunWithFailover(plan.distRounds, dist.FailoverPlan{
		Chaos:         ch,
		Crashes:       plan.distCrashes,
		CheckpointDir: dir,
		ZombieProbe:   true,
		OnRestart: func(epoch uint64) {
			// The restarted coordinator persists its generation: the next
			// restart (and the next soak) recovers the epoch from disk.
			baseEpoch = epoch
			_, _ = writer.Save(rec.Capture(st.eng, rec.CaptureOptions{
				Epoch: epoch, Seed: seed, Admit: st.ctrl,
			}))
			if rm != nil {
				rm.Epoch.Set(float64(epoch))
				rm.Rejoins.Inc()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	ch.Wait()
	inner.Wait()
	if rm != nil {
		rm.FencedFrames.Add(dres.FencedStale)
	}

	// Mirror engine: the distributed run crossed three coordinator
	// generations; its final state must still be the serial engine's, bitwise.
	mirror, err := core.NewEngine(workload.Base(), core.Config{})
	if err != nil {
		return nil, err
	}
	defer mirror.Close()
	mirror.Run(plan.distRounds, nil)
	msnap := mirror.Snapshot()
	distMaxDiff := 0.0
	for ti := range msnap.LatMs {
		for si := range msnap.LatMs[ti] {
			if d := math.Abs(dres.LatMs[ti][si] - msnap.LatMs[ti][si]); d > distMaxDiff {
				distMaxDiff = d
			}
		}
	}
	for ri := range msnap.Mu {
		if d := math.Abs(dres.Mu[ri] - msnap.Mu[ri]); d > distMaxDiff {
			distMaxDiff = d
		}
	}
	mprobe := mirror.Probe()
	distFeasible := mprobe.MaxResourceViolation <= tol && mprobe.MaxPathViolationFrac <= tol

	res := &Result{
		ID: "soak",
		Title: fmt.Sprintf("Chaos soak: %d churn events, %d engine crash/restore cycles, %d coordinator crashes (seed %d)",
			events, restores, dres.CoordinatorRestarts, seed),
	}
	res.RoundsToConverge = coldRounds

	meanWarm := 0.0
	if restores > 0 {
		meanWarm = float64(warmRoundsSum) / float64(restores)
	}
	summary := &Table{
		Title: "Soak summary",
		Header: []string{"phase", "events", "admitted", "rejected", "departed", "violations",
			"restores", "bitwise mismatches", "warm mean", "warm max", "cold"},
	}
	summary.AddRow("engine-churn",
		fmt.Sprintf("%d", events), fmt.Sprintf("%d", admitted), fmt.Sprintf("%d", rejected),
		fmt.Sprintf("%d", departures), fmt.Sprintf("%d", violations),
		fmt.Sprintf("%d", restores), fmt.Sprintf("%d", bitwiseMismatches),
		f1(meanWarm), fmt.Sprintf("%d", warmRoundsMax), fmt.Sprintf("%d", coldRounds))
	res.Tables = append(res.Tables, summary)

	failover := &Table{
		Title:  "Coordinator failover under chaos",
		Header: []string{"rounds", "restarts", "epoch", "fenced stale", "rejoins", "retransmits", "max |dist-engine|"},
	}
	failover.AddRow(
		fmt.Sprintf("%d", plan.distRounds),
		fmt.Sprintf("%d", dres.CoordinatorRestarts),
		fmt.Sprintf("%d", dres.Epoch),
		fmt.Sprintf("%d", dres.FencedStale),
		fmt.Sprintf("%d", dres.Rejoins),
		fmt.Sprintf("%d", dres.Retransmits),
		fmt.Sprintf("%.2e", distMaxDiff))
	res.Tables = append(res.Tables, failover)
	res.Series = append(res.Series, utilSeries, warmSeries)

	// Acceptance verdicts — every "FAILED" below is a hard failure for the
	// soak test and the CI smoke job.
	verdict := func(ok bool, pass, fail string) {
		if ok {
			res.Notes = append(res.Notes, pass)
		} else {
			res.Notes = append(res.Notes, "verdict: FAILED — "+fail)
		}
	}
	if !opts.Quick {
		verdict(events >= plan.minEvents,
			fmt.Sprintf("churn volume: %d events (target ≥ %d)", events, plan.minEvents),
			fmt.Sprintf("only %d churn events, need ≥ %d", events, plan.minEvents))
	}
	verdict(violations == 0,
		"critical-time violations: 0 across every crash/restore cycle",
		fmt.Sprintf("%d critical-time violation events", violations))
	verdict(restores > 0 && bitwiseMismatches == 0,
		fmt.Sprintf("restore fidelity: %d restores, every one bitwise-identical to the live engine", restores),
		fmt.Sprintf("%d of %d restores diverged from the live engine", bitwiseMismatches, restores))
	// The convergence detector's window puts a floor under every measured
	// recovery, so the soak bound is a small multiple of rounds_to_converge;
	// the strict warm-vs-cold comparison (without the window floor) is the
	// recovery benchmark's regression gate.
	verdict(warmFailures == 0 && coldRounds > 0 && warmRoundsMax <= 2*coldRounds,
		fmt.Sprintf("warm recovery bounded: max %d rounds ≤ 2× rounds_to_converge (%d)",
			warmRoundsMax, coldRounds),
		fmt.Sprintf("warm recovery (max %d rounds, %d failures) exceeds 2× rounds_to_converge (%d)",
			warmRoundsMax, warmFailures, coldRounds))
	verdict(allocsFlat,
		fmt.Sprintf("allocation rate flat: %.0f allocs/event late vs %.0f early", allocLate, allocEarly),
		fmt.Sprintf("allocation rate grew: %.0f allocs/event late vs %.0f early", allocLate, allocEarly))
	verdict(dres.CoordinatorRestarts >= len(plan.distCrashes),
		fmt.Sprintf("coordinator crashes: %d executed, final epoch %d", dres.CoordinatorRestarts, dres.Epoch),
		fmt.Sprintf("only %d of %d scheduled coordinator crashes executed", dres.CoordinatorRestarts, len(plan.distCrashes)))
	verdict(dres.FencedStale > 0,
		fmt.Sprintf("epoch fencing: %d stale-generation frames fenced (zombie probe included)", dres.FencedStale),
		"no stale-epoch frame was fenced despite the zombie probe")
	verdict(distMaxDiff <= 1e-9 && distFeasible,
		fmt.Sprintf("distributed recovery exact: max |dist−engine| = %.2e, final state feasible", distMaxDiff),
		fmt.Sprintf("distributed run diverged (max diff %.2e) or ended infeasible", distMaxDiff))
	return res, nil
}
