package eval

import (
	"fmt"

	"lla/internal/sim"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"

	sharepkg "lla/internal/share"
)

// Percentiles validates the latency-percentile composition rule of Section
// 2.1: for a path of n subtasks and a target end-to-end percentile p, each
// subtask bound must be taken at q = p^(1/n)·100^((n-1)/n) so that the
// per-subtask q-quantile bounds sum to an end-to-end bound holding with
// probability at least p. The experiment runs a jittered, contended chain
// on the simulator and measures the coverage of the composed bound.
func Percentiles(opts Options) (*Result, error) {
	simMs := 400000.0
	if opts.Quick {
		simMs = 80000
	}

	// A 3-stage chain contending with a second task on every resource, with
	// 50% execution jitter: non-degenerate latency distributions.
	const n = 3
	mkChain := func(name string, exec float64, period float64) *task.Task {
		b := task.NewBuilder(name, 10000).Trigger(task.Poisson(period))
		var names []string
		for i := 0; i < n; i++ {
			sn := fmt.Sprintf("%s-s%d", name, i)
			b.Subtask(sn, fmt.Sprintf("r%d", i), exec)
			names = append(names, sn)
		}
		b.Chain(names...)
		return b.MustBuild()
	}
	w := &workload.Workload{
		Name:  "percentile-chain",
		Tasks: []*task.Task{mkChain("probe", 2, 40), mkChain("load", 5, 25)},
		Curves: map[string]utility.Curve{
			"probe": utility.NegLatency{},
			"load":  utility.NegLatency{},
		},
	}
	for i := 0; i < n; i++ {
		w.Resources = append(w.Resources, sharepkg.Resource{
			ID: fmt.Sprintf("r%d", i), Kind: sharepkg.CPU, Availability: 1, LagMs: 1,
		})
	}

	world, err := sim.New(w, sim.Config{
		Scheduler:      sim.Quantum,
		QuantumMs:      3,
		Seed:           opts.Seed + 11,
		ExecJitterFrac: 0.5,
	})
	if err != nil {
		return nil, err
	}
	world.RunFor(simMs / 10)
	world.ResetStats()
	world.RunFor(simMs)

	res := &Result{
		ID:    "percentiles",
		Title: "Latency percentile composition (Section 2.1) validated on the simulator",
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Composed per-subtask bounds on a %d-stage chain (probe task)", n),
		Header: []string{"target p", "per-subtask q", "composed bound (ms)", "measured coverage %", "holds"},
	}
	samples := world.TaskLatency(0).Snapshot()
	for _, p := range []float64{50, 90, 99} {
		q, err := utility.SubtaskPercentile(p, n)
		if err != nil {
			return nil, err
		}
		bound := 0.0
		for si := 0; si < n; si++ {
			bound += world.SubtaskLatency(0, si).Quantile(q / 100)
		}
		covered := 0
		for _, v := range samples {
			if v <= bound {
				covered++
			}
		}
		coverage := float64(covered) / float64(len(samples)) * 100
		tbl.AddRow(f1(p), f2(q), f2(bound), f2(coverage), fmt.Sprintf("%v", coverage >= p-1))
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d end-to-end samples; per-subtask quantiles from %d+ samples each",
			len(samples), world.SubtaskLatency(0, 0).Count()),
		"the rule is conservative under positive latency correlation, so measured coverage",
		"typically exceeds the target percentile.",
	)
	return res, nil
}
