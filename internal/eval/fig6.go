package eval

import (
	"fmt"

	"lla/internal/core"
	"lla/internal/stats"
	"lla/internal/workload"
)

// Fig6 reproduces Figure 6: convergence as the number of tasks scales from
// 3 to 6 to 12 by task replication with overprovisioned critical times
// (Section 5.3). The paper reports that convergence speed is independent of
// the task count and that utility grows linearly with it.
func Fig6(opts Options) (*Result, error) {
	iters := 600
	if opts.Quick {
		iters = 250
	}
	res := &Result{
		ID:    "fig6",
		Title: "Convergence as the number of tasks scales (3, 6, 12 tasks)",
	}
	summary := &Table{
		Title:  "Scaling summary",
		Header: []string{"tasks", "iters to feasible", "final utility", "utility per task"},
	}

	// Overprovision critical times uniformly (the paper keeps the same
	// relaxed critical times across all three workloads so that even the
	// 12-task workload is schedulable).
	const critScale = 8
	var perTask []float64
	for _, factor := range []int{1, 2, 4} {
		w, err := workload.Replicate(workload.Base(), factor, critScale)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEngine(w, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		opts.attach(e)
		series := stats.NewSeries(fmt.Sprintf("%d-tasks", 3*factor))
		firstFeasible := -1
		var last core.Snapshot
		e.Run(iters, func(s core.Snapshot) {
			series.Append(float64(s.Iteration), s.Utility)
			if firstFeasible < 0 && s.Iteration > 5 && s.Feasible(1e-2) {
				firstFeasible = s.Iteration
			}
			last = s
		})
		res.Series = append(res.Series, series)
		n := float64(3 * factor)
		perTask = append(perTask, last.Utility/n)
		summary.AddRow(fmt.Sprintf("%d", 3*factor), fmt.Sprintf("%d", firstFeasible),
			f2(last.Utility), f2(last.Utility/n))
		// The worst rounds-to-feasible across the sweep is the figure's
		// convergence headline (the paper's claim is that it is flat in the
		// task count).
		if firstFeasible < 0 {
			res.RoundsToConverge = -1
		} else if res.RoundsToConverge >= 0 && firstFeasible > res.RoundsToConverge {
			res.RoundsToConverge = firstFeasible
		}
	}
	res.Tables = append(res.Tables, summary)
	if len(perTask) == 3 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"linearity: utility/task = %.2f, %.2f, %.2f (paper: utility increases linearly with task count)",
			perTask[0], perTask[1], perTask[2]))
	}
	res.Notes = append(res.Notes,
		"paper: convergence speed does not depend on the number of tasks executing simultaneously")
	return res, nil
}
