package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSoakQuick runs the chaos soak in quick mode and checks every acceptance
// verdict: zero violations, bitwise restores, warm < cold recovery, flat
// allocs, all coordinator crashes executed, stale frames fenced, and the
// distributed result exact.
func TestSoakQuick(t *testing.T) {
	dir := t.TempDir()
	res, err := Soak(Options{Quick: true, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if strings.Contains(out, "verdict: FAILED") {
		t.Fatalf("soak verdict failed:\n%s", out)
	}
	for _, want := range []string{
		"critical-time violations: 0",
		"restore fidelity",
		"warm recovery bounded",
		"epoch fencing",
		"distributed recovery exact",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("soak report missing %q:\n%s", want, out)
		}
	}
	// The checkpoint directory must hold durable generations (writer keeps
	// DefaultKeep), none of them temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("temp checkpoint litter: %s", e.Name())
		}
		if filepath.Ext(e.Name()) == ".llackpt" {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Error("soak left no checkpoints behind")
	}
}

// TestSoakEpochPersists runs two quick soaks over the same checkpoint
// directory: the second run's coordinator must recover the first run's final
// epoch from disk and keep counting generations from there.
func TestSoakEpochPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick soaks")
	}
	dir := t.TempDir()
	first, err := Soak(Options{Quick: true, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Soak(Options{Quick: true, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(second.Render(), "verdict: FAILED") {
		t.Fatalf("second soak over a reused checkpoint dir failed:\n%s", second.Render())
	}
	// Each soak schedules 3 coordinator crashes; epochs are cumulative across
	// runs because the generation is persisted in the checkpoints.
	get := func(r *Result, what string) string {
		for _, n := range r.Notes {
			if strings.Contains(n, what) {
				return n
			}
		}
		return ""
	}
	n1, n2 := get(first, "final epoch"), get(second, "final epoch")
	if n1 == "" || n2 == "" {
		t.Fatalf("missing epoch notes: %q / %q", n1, n2)
	}
	if !strings.Contains(n1, "final epoch 3") || !strings.Contains(n2, "final epoch 6") {
		t.Errorf("epochs did not persist across soaks:\n first: %s\n second: %s", n1, n2)
	}
}
