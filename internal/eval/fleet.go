package eval

import (
	"fmt"
	"math"
	"reflect"

	"lla/internal/core"
	"lla/internal/fleet"
	"lla/internal/obs"
	"lla/internal/stats"
	"lla/internal/workload"
)

// fleetUtilityTol gates the sharded fixed point against the single engine's:
// the aggregate utilities must agree to this relative deviation. The fleet
// certifies its own KKT residual too, but the cross-check against an
// independently converged engine is what ties the hierarchy back to the
// paper's centralized optimum.
const fleetUtilityTol = 1e-3

// Fleet runs the hierarchical sharded fleet (SHARDING.md) on a clustered
// workload and cross-checks it against the single-engine reference: the
// partition statistics, the aggregator rounds versus the single engine's KKT
// rounds, and the fixed-point utilities. Two invariants are asserted as it
// runs: a repeat run reproduces identical per-shard state hashes at every
// aggregator round (per-shard bitwise determinism), and the fleet's utility
// matches the single engine's within fleetUtilityTol.
func Fleet(opts Options) (*Result, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = 8
		if opts.Quick {
			shards = 4
		}
	}
	ccfg := workload.DefaultClusteredConfig(opts.Seed)
	ccfg.Clusters = shards
	ccfg.CrossFraction = 0.15
	singleIters := 20000
	if opts.Quick {
		ccfg.TasksPerCluster = 5
		singleIters = 5000
	} else {
		ccfg.TasksPerCluster = 12
		ccfg.ReplicateFactor = 4
		// Replication multiplies demand on each cluster's shared resources,
		// so the critical-time slack must scale with it or the minimum
		// feasible demand alone overloads the boundary (no price fixes that).
		ccfg.SlackFactor = 40
	}
	w, err := workload.Clustered(ccfg)
	if err != nil {
		return nil, err
	}

	run := func() (fleet.Result, *obs.Memory, error) {
		mem := obs.NewMemory()
		fobs := &obs.Observer{Trace: mem}
		if opts.Observer != nil {
			fobs.Metrics = opts.Observer.Metrics
			if opts.Observer.Trace != nil {
				fobs.Trace = obs.MultiSink(opts.Observer.Trace, mem)
			}
		}
		f, err := fleet.New(w, fleet.Config{
			Shards:       shards,
			Seed:         opts.Seed,
			Engine:       opts.engineConfig(),
			WireVerify:   opts.Wire == "binary",
			RecordHashes: true,
			Observer:     fobs,
		})
		if err != nil {
			return fleet.Result{}, nil, err
		}
		defer f.Close()
		r, err := f.Run()
		return r, mem, err
	}

	fres, mem, err := run()
	if err != nil {
		return nil, err
	}
	if !fres.Converged {
		return nil, fmt.Errorf("eval: fleet did not certify within %d rounds (kkt %.3g, boundary %.3g)",
			fres.Rounds, fres.KKTMax, fres.BoundaryResidual)
	}
	repeat, _, err := run()
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(fres.ShardHashes, repeat.ShardHashes) {
		return nil, fmt.Errorf("eval: fleet repeat run diverged — per-shard state hashes differ")
	}

	single, err := core.NewEngine(w, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	defer single.Close()
	opts.attach(single)
	snap, ok := single.RunUntilKKT(singleIters, 1e-6, 3, 1e-6)
	if !ok {
		return nil, fmt.Errorf("eval: single-engine reference did not converge within %d iterations", singleIters)
	}
	relDev := math.Abs(fres.Utility-snap.Utility) / math.Max(1, math.Abs(snap.Utility))
	if relDev > fleetUtilityTol {
		return nil, fmt.Errorf("eval: fleet utility %.6g deviates from single-engine %.6g by %.3g (> %g)",
			fres.Utility, snap.Utility, relDev, fleetUtilityTol)
	}

	res := &Result{
		ID:               "fleet",
		Title:            "Hierarchical sharded fleet vs single engine (SHARDING.md)",
		RoundsToConverge: fres.Rounds,
	}
	summary := &Table{
		Title:  "Fleet convergence and partition statistics",
		Header: []string{"shards", "tasks", "subtasks", "boundary", "cut", "rounds", "local iters", "single iters", "util dev"},
	}
	summary.AddRow(
		fmt.Sprintf("%d", shards),
		fmt.Sprintf("%d", len(w.Tasks)),
		fmt.Sprintf("%d", w.TotalSubtasks()),
		fmt.Sprintf("%d", fres.BoundaryCount),
		fmt.Sprintf("%d", fres.CutCost),
		fmt.Sprintf("%d", fres.Rounds),
		fmt.Sprintf("%d", fres.LocalIters),
		fmt.Sprintf("%d", snap.Iteration),
		fmt.Sprintf("%.2g", relDev),
	)
	res.Tables = append(res.Tables, summary)

	resid := stats.NewSeries("boundary-residual")
	iters := stats.NewSeries("local-iters-per-round")
	for _, ev := range mem.ByKind(obs.EventFleetRound) {
		resid.Append(float64(ev.Round), ev.Value)
		iters.Append(float64(ev.Round), float64(ev.Iteration))
	}
	res.Series = append(res.Series, resid, iters)
	res.Notes = append(res.Notes,
		fmt.Sprintf("repeat run reproduced identical per-shard state hashes across all %d rounds (asserted)", fres.Rounds),
		fmt.Sprintf("fleet utility within %.2g of the single-engine KKT fixed point (asserted at %g)", relDev, fleetUtilityTol),
	)
	return res, nil
}
