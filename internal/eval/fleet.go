package eval

import (
	"fmt"
	"math"
	"reflect"

	"lla/internal/core"
	"lla/internal/fleet"
	"lla/internal/obs"
	"lla/internal/stats"
	"lla/internal/workload"
)

// fleetUtilityTol gates the sharded fixed point against the single engine's:
// the aggregate utilities must agree to this relative deviation. The fleet
// certifies its own KKT residual too, but the cross-check against an
// independently converged engine is what ties the hierarchy back to the
// paper's centralized optimum.
const fleetUtilityTol = 1e-3

// Fleet runs the hierarchical sharded fleet (SHARDING.md) on a clustered
// workload and cross-checks it against the single-engine reference: the
// partition statistics, the aggregator rounds versus the single engine's KKT
// rounds, and the fixed-point utilities. Two invariants are asserted as it
// runs: a repeat run reproduces identical per-shard state hashes at every
// aggregator round (per-shard bitwise determinism), and the fleet's utility
// matches the single engine's within fleetUtilityTol.
func Fleet(opts Options) (*Result, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = 8
		if opts.Quick {
			shards = 4
		}
	}
	ccfg := workload.DefaultClusteredConfig(opts.Seed)
	ccfg.Clusters = shards
	ccfg.CrossFraction = 0.15
	singleIters := 20000
	if opts.Quick {
		ccfg.TasksPerCluster = 5
		singleIters = 5000
	} else {
		ccfg.TasksPerCluster = 12
		ccfg.ReplicateFactor = 4
		// Replication multiplies demand on each cluster's shared resources,
		// so the critical-time slack must scale with it or the minimum
		// feasible demand alone overloads the boundary (no price fixes that).
		ccfg.SlackFactor = 40
	}
	w, err := workload.Clustered(ccfg)
	if err != nil {
		return nil, err
	}

	build := func(workers int) (*fleet.Fleet, *obs.Memory, error) {
		mem := obs.NewMemory()
		fobs := &obs.Observer{Trace: mem}
		if opts.Observer != nil {
			fobs.Metrics = opts.Observer.Metrics
			if opts.Observer.Trace != nil {
				fobs.Trace = obs.MultiSink(opts.Observer.Trace, mem)
			}
		}
		f, err := fleet.New(w, fleet.Config{
			Shards:       shards,
			Seed:         opts.Seed,
			ShardWorkers: workers,
			Engine:       opts.engineConfig(),
			WireVerify:   opts.Wire == "binary",
			RecordHashes: true,
			Observer:     fobs,
		})
		return f, mem, err
	}
	run := func(workers int) (fleet.Result, *obs.Memory, error) {
		f, mem, err := build(workers)
		if err != nil {
			return fleet.Result{}, nil, err
		}
		defer f.Close()
		r, err := f.Run()
		return r, mem, err
	}

	// Primary run at the requested sweep concurrency (0 = parallel default);
	// the serial repeat both reproduces the run (bitwise determinism) and
	// proves the parallel rounds leave no scheduling fingerprint.
	fres, mem, err := run(opts.ShardWorkers)
	if err != nil {
		return nil, err
	}
	if !fres.Converged {
		return nil, fmt.Errorf("eval: fleet did not certify within %d rounds (kkt %.3g, boundary %.3g)",
			fres.Rounds, fres.KKTMax, fres.BoundaryResidual)
	}
	serial, _, err := run(1)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(fres.ShardHashes, serial.ShardHashes) {
		return nil, fmt.Errorf("eval: parallel fleet (%d sweep workers) diverged from the serial run — per-shard state hashes differ",
			fres.ShardWorkers)
	}
	if !reflect.DeepEqual(fres.BoundaryResiduals, serial.BoundaryResiduals) {
		return nil, fmt.Errorf("eval: parallel fleet diverged from the serial run — boundary residual series differ")
	}

	single, err := core.NewEngine(w, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	defer single.Close()
	opts.attach(single)
	snap, ok := single.RunUntilKKT(singleIters, 1e-6, 3, 1e-6)
	if !ok {
		return nil, fmt.Errorf("eval: single-engine reference did not converge within %d iterations", singleIters)
	}
	relDev := math.Abs(fres.Utility-snap.Utility) / math.Max(1, math.Abs(snap.Utility))
	if relDev > fleetUtilityTol {
		return nil, fmt.Errorf("eval: fleet utility %.6g deviates from single-engine %.6g by %.3g (> %g)",
			fres.Utility, snap.Utility, relDev, fleetUtilityTol)
	}

	res := &Result{
		ID:               "fleet",
		Title:            "Hierarchical sharded fleet vs single engine (SHARDING.md)",
		RoundsToConverge: fres.Rounds,
	}
	summary := &Table{
		Title:  "Fleet convergence and partition statistics",
		Header: []string{"shards", "workers", "tasks", "subtasks", "boundary", "cut", "rounds", "swept", "skipped", "local iters", "single iters", "util dev"},
	}
	summary.AddRow(
		fmt.Sprintf("%d", shards),
		fmt.Sprintf("%d", fres.ShardWorkers),
		fmt.Sprintf("%d", len(w.Tasks)),
		fmt.Sprintf("%d", w.TotalSubtasks()),
		fmt.Sprintf("%d", fres.BoundaryCount),
		fmt.Sprintf("%d", fres.CutCost),
		fmt.Sprintf("%d", fres.Rounds),
		fmt.Sprintf("%d", fres.SweptShards),
		fmt.Sprintf("%d", fres.SkippedShards),
		fmt.Sprintf("%d", fres.LocalIters),
		fmt.Sprintf("%d", snap.Iteration),
		fmt.Sprintf("%.2g", relDev),
	)
	res.Tables = append(res.Tables, summary)

	// Churn phase: tighten one task's critical time and apply the delta
	// through incremental repartitioning — only the affected shards rebuild
	// and the warm fleet re-certifies in a fraction of the cold rounds.
	w2 := w.Clone()
	w2.Tasks[0].CriticalMs *= 0.95
	warm, _, err := build(opts.ShardWorkers)
	if err != nil {
		return nil, err
	}
	defer warm.Close()
	if _, err := warm.Run(); err != nil {
		return nil, err
	}
	rst, err := warm.ReplaceWorkload(w2)
	if err != nil {
		return nil, fmt.Errorf("eval: fleet ReplaceWorkload: %w", err)
	}
	wres, err := warm.Run()
	if err != nil {
		return nil, err
	}
	if !wres.Converged {
		return nil, fmt.Errorf("eval: warm fleet did not re-certify after churn within %d rounds", wres.Rounds)
	}
	coldRef, err := func() (fleet.Result, error) {
		f, err := fleet.New(w2, fleet.Config{
			Shards: shards, Seed: opts.Seed, ShardWorkers: opts.ShardWorkers,
			Engine: opts.engineConfig(), WireVerify: opts.Wire == "binary",
		})
		if err != nil {
			return fleet.Result{}, err
		}
		defer f.Close()
		return f.Run()
	}()
	if err != nil {
		return nil, err
	}
	relChurn := math.Abs(wres.Utility-coldRef.Utility) / math.Max(1, math.Abs(coldRef.Utility))
	if relChurn > fleetUtilityTol {
		return nil, fmt.Errorf("eval: warm post-churn utility %.6g deviates from cold %.6g by %.3g (> %g)",
			wres.Utility, coldRef.Utility, relChurn, fleetUtilityTol)
	}
	churn := &Table{
		Title:  "Incremental repartitioning after churn (one task's critical time tightened 5%)",
		Header: []string{"mode", "rebuilt", "reused", "rounds", "local iters"},
	}
	churn.AddRow("warm (ReplaceWorkload)",
		fmt.Sprintf("%d", rst.Rebuilt), fmt.Sprintf("%d", rst.Reused),
		fmt.Sprintf("%d", wres.Rounds), fmt.Sprintf("%d", wres.LocalIters))
	churn.AddRow("cold (full rebuild)",
		fmt.Sprintf("%d", shards), "0",
		fmt.Sprintf("%d", coldRef.Rounds), fmt.Sprintf("%d", coldRef.LocalIters))
	res.Tables = append(res.Tables, churn)

	resid := stats.NewSeries("boundary-residual")
	iters := stats.NewSeries("local-iters-per-round")
	for _, ev := range mem.ByKind(obs.EventFleetRound) {
		resid.Append(float64(ev.Round), ev.Value)
		iters.Append(float64(ev.Round), float64(ev.Iteration))
	}
	res.Series = append(res.Series, resid, iters)
	res.Notes = append(res.Notes,
		fmt.Sprintf("serial repeat (1 sweep worker) reproduced the %d-worker run's per-shard state hashes across all %d rounds (asserted)", fres.ShardWorkers, fres.Rounds),
		fmt.Sprintf("fleet utility within %.2g of the single-engine KKT fixed point (asserted at %g)", relDev, fleetUtilityTol),
		fmt.Sprintf("post-churn warm restart rebuilt %d/%d shards and re-certified in %d rounds (cold: %d); utility within %.2g of cold (asserted at %g)",
			rst.Rebuilt, shards, wres.Rounds, coldRef.Rounds, relChurn, fleetUtilityTol),
	)
	return res, nil
}
