package eval

import (
	"fmt"

	"lla/internal/baseline"
	"lla/internal/core"
	"lla/internal/stats"
	"lla/internal/task"
	"lla/internal/workload"
)

// AblationWeights compares the utility variants of Section 3.2 (sum,
// path-weighted, raw path counts) on the base workload: achieved utility,
// iterations to convergence and constraint satisfaction.
func AblationWeights(opts Options) (*Result, error) {
	iters := 8000
	if opts.Quick {
		iters = 2500
	}
	res := &Result{
		ID:    "ablation-weights",
		Title: "Utility variants (Section 3.2): sum vs path-weighted vs raw path counts",
	}
	tbl := &Table{
		Title:  "Variant comparison (base workload)",
		Header: []string{"variant", "converged", "iters", "utility", "max res viol", "max path viol"},
	}
	for _, mode := range []task.WeightMode{task.WeightSum, task.WeightPathNormalized, task.WeightPathRaw} {
		ecfg := opts.engineConfig()
		ecfg.WeightMode = mode
		e, err := core.NewEngine(workload.Base(), ecfg)
		if err != nil {
			return nil, err
		}
		opts.attach(e)
		snap, ok := e.RunUntilConverged(iters, 1e-8, 50, 1e-2)
		tbl.AddRow(mode.String(), fmt.Sprintf("%v", ok), fmt.Sprintf("%d", snap.Iteration),
			f2(snap.Utility), f3(snap.MaxResourceViolation), f3(snap.MaxPathViolationFrac))
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"paper (Section 5.2): the sum variant's convergence properties were not different;",
		"utilities are not directly comparable across variants (different objective scales).",
	)
	return res, nil
}

// AblationBaselines compares LLA against the centralized reference solver
// and the capacity-blind deadline-slicing heuristics on the base workload
// and an overprovisioned variant.
func AblationBaselines(opts Options) (*Result, error) {
	iters := 8000
	if opts.Quick {
		iters = 2500
	}
	res := &Result{
		ID:    "ablation-baselines",
		Title: "LLA vs centralized reference vs deadline-slicing heuristics",
	}
	for _, scenario := range []struct {
		name      string
		critScale float64
	}{
		{"congested (paper base workload)", 1},
		{"overprovisioned (critical times x4)", 4},
	} {
		w, err := workload.Replicate(workload.Base(), 1, scenario.critScale)
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			Title:  scenario.name,
			Header: []string{"algorithm", "utility", "max res viol", "max path viol", "feasible"},
		}

		e, err := core.NewEngine(w, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		opts.attach(e)
		snap, _ := e.RunUntilConverged(iters, 1e-8, 50, 1e-3)
		tbl.AddRow("LLA (distributed)", f2(snap.Utility), f3(snap.MaxResourceViolation),
			f3(snap.MaxPathViolationFrac), fmt.Sprintf("%v", snap.Feasible(1e-2)))

		ccfg := baseline.CentralConfig{}
		if opts.Quick {
			ccfg.Rounds = 60
		}
		_, cev, err := baseline.Central(w, ccfg)
		if err != nil {
			return nil, err
		}
		tbl.AddRow("centralized reference", f2(cev.Utility), f3(cev.MaxResourceViolation),
			f3(cev.MaxPathViolationFrac), fmt.Sprintf("%v", cev.Feasible(0.02)))

		for _, bl := range []struct {
			name string
			mk   func(*workload.Workload) (*baseline.Assignment, error)
		}{
			{"even slicing", baseline.EvenSlice},
			{"WCET-proportional slicing", baseline.ProportionalSlice},
		} {
			a, err := bl.mk(w)
			if err != nil {
				return nil, err
			}
			ev, err := baseline.Evaluate(w, a, task.WeightPathNormalized)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(bl.name, f2(ev.Utility), f3(ev.MaxResourceViolation),
				f3(ev.MaxPathViolationFrac), fmt.Sprintf("%v", ev.Feasible(1e-2)))
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"the slicing heuristics ignore resource capacity (the paper notes this of BST/AST):",
		"on the congested workload they overload resources; where all are feasible, LLA and",
		"the centralized solver agree and dominate.",
	)
	return res, nil
}

// Adaptation exercises the abstract's claim that LLA "adapts to both
// workload and resource variations": a capacity drop and a rate surge
// mid-run, recording the utility trajectory through both disturbances.
func Adaptation(opts Options) (*Result, error) {
	phase := 400
	if opts.Quick {
		phase = 150
	}
	w, err := workload.Replicate(workload.Base(), 1, 4)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(w, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	opts.attach(e)

	res := &Result{
		ID:    "adaptation",
		Title: "Online adaptation to resource and workload variations",
	}
	series := stats.NewSeries("utility")
	record := func(s core.Snapshot) { series.Append(float64(s.Iteration), s.Utility) }

	e.Run(phase, record)
	u1 := e.Snapshot()

	// Resource variation: r0 loses 30% capacity.
	if err := e.SetAvailability("r0", 0.7); err != nil {
		return nil, err
	}
	e.Run(phase, record)
	u2 := e.Snapshot()

	// Workload variation: task1's root subtask needs a 0.3 share floor.
	if err := e.SetMinShare(w.Tasks[0].Name, "T11", 0.3); err != nil {
		return nil, err
	}
	e.Run(phase, record)
	u3 := e.Snapshot()

	res.Series = append(res.Series, series)
	tbl := &Table{
		Title:  "Utility across disturbances",
		Header: []string{"phase", "utility", "feasible"},
	}
	tbl.AddRow("steady state", f2(u1.Utility), fmt.Sprintf("%v", u1.Feasible(1e-2)))
	tbl.AddRow("after 30% capacity loss on r0", f2(u2.Utility), fmt.Sprintf("%v", u2.Feasible(1e-2)))
	tbl.AddRow("after min-share surge on T11", f2(u3.Utility), fmt.Sprintf("%v", u3.Feasible(1e-2)))
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"each disturbance lowers the achievable utility; the optimizer re-converges to the",
		"new optimum without restarting (prices adapt incrementally).",
	)
	return res, nil
}
