package eval

import (
	"strings"
	"testing"
)

// TestFleetExperimentQuick runs the fleet experiment in quick mode: the
// runner itself asserts per-shard hash determinism and the utility gate, so
// the test mostly checks the artifact shape.
func TestFleetExperimentQuick(t *testing.T) {
	res, err := Fleet(Options{Quick: true, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if res.ID != "fleet" {
		t.Errorf("ID %q, want fleet", res.ID)
	}
	if res.RoundsToConverge < 1 {
		t.Errorf("RoundsToConverge %d, want >= 1", res.RoundsToConverge)
	}
	if len(res.Tables) != 2 || len(res.Tables[0].Rows) != 1 {
		t.Fatalf("want summary and churn tables with one summary row, got %+v", res.Tables)
	}
	if len(res.Tables[1].Rows) != 2 {
		t.Fatalf("want warm and cold churn rows, got %+v", res.Tables[1].Rows)
	}
	if len(res.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(res.Series))
	}
	out := res.Render()
	for _, want := range []string{"boundary", "cut", "per-shard state hashes", "Incremental repartitioning", "warm (ReplaceWorkload)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

// TestFleetExperimentShardsOverride checks Options.Shards reaches the
// partitioner and the wire-verify path composes with it.
func TestFleetExperimentShardsOverride(t *testing.T) {
	res, err := Fleet(Options{Quick: true, Seed: 2, Workers: 1, Shards: 3, Wire: "binary"})
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if got := res.Tables[0].Rows[0][0]; got != "3" {
		t.Errorf("shards cell %q, want 3", got)
	}
}
