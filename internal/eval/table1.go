package eval

import (
	"fmt"
	"math"

	"lla/internal/core"
	"lla/internal/workload"
)

// Table1 reproduces the paper's Table 1: it runs LLA with adaptive step
// sizes on the base three-task workload until convergence and reports the
// optimal per-subtask latencies and per-task critical paths next to the
// published values.
func Table1(opts Options) (*Result, error) {
	iters := 8000
	if opts.Quick {
		iters = 1500
	}
	w := workload.Base()
	e, err := core.NewEngine(w, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	opts.attach(e)
	snap, converged := e.RunUntilConverged(iters, 1e-8, 50, 1e-3)

	res := &Result{
		ID:    "table1",
		Title: "Task parameters and optimization results (base 3-task workload)",
	}
	res.RoundsToConverge = -1
	if converged {
		res.RoundsToConverge = snap.Iteration
	}

	lat := &Table{
		Title:  "Per-subtask optimal latencies (ms)",
		Header: []string{"task", "subtask", "resource", "exec", "paper", "measured", "rel.err%"},
	}
	ref := workload.Table1LatenciesMs()
	var sumRel, maxRel float64
	var count int
	for ti, tk := range w.Tasks {
		for si, s := range tk.Subtasks {
			want := ref[tk.Name][s.Name]
			got := snap.LatMs[ti][si]
			rel := math.Abs(got-want) / want
			sumRel += rel
			count++
			if rel > maxRel {
				maxRel = rel
			}
			lat.AddRow(tk.Name, s.Name, s.Resource, f1(s.ExecMs), f1(want), f2(got), f2(rel*100))
		}
	}
	res.Tables = append(res.Tables, lat)

	cp := &Table{
		Title:  "Critical paths vs critical times (ms)",
		Header: []string{"task", "crit.time", "paper crit.path", "measured crit.path", "slack%"},
	}
	refCP := workload.Table1CriticalPathsMs()
	for ti, tk := range w.Tasks {
		slack := (1 - snap.CriticalPathMs[ti]/tk.CriticalMs) * 100
		cp.AddRow(tk.Name, f1(tk.CriticalMs), f1(refCP[tk.Name]), f2(snap.CriticalPathMs[ti]), f2(slack))
	}
	res.Tables = append(res.Tables, cp)

	shares := &Table{
		Title:  "Resource saturation at the optimum",
		Header: []string{"resource", "share sum", "availability"},
	}
	for ri, sum := range snap.ShareSums {
		shares.AddRow(w.Resources[ri].ID, f3(sum), f2(w.Resources[ri].Availability))
	}
	res.Tables = append(res.Tables, shares)

	res.Notes = append(res.Notes,
		fmt.Sprintf("converged=%v after %d iterations, utility=%.2f", converged, snap.Iteration, snap.Utility),
		fmt.Sprintf("latency error vs Table 1: mean %.2f%%, max %.2f%%", sumRel/float64(count)*100, maxRel*100),
		"paper claim: critical path always less than 1% smaller than the critical time",
	)
	return res, nil
}
