package eval

import (
	"fmt"

	"lla/internal/core"
	"lla/internal/stats"
	"lla/internal/workload"
)

// Fig5 reproduces Figure 5: system utility versus iteration on the base
// workload for fixed step sizes gamma in {0.1, 1, 10} and the adaptive
// heuristic, demonstrating the step-size trade-off the paper reports —
// gamma=10 oscillates with high amplitude, gamma=0.1 converges only after
// far more than 500 iterations, gamma=1 converges around 500 iterations,
// and the adaptive heuristic stabilizes fastest.
func Fig5(opts Options) (*Result, error) {
	iters := 500
	if opts.Quick {
		iters = 200
	}
	configs := []struct {
		name string
		step core.StepPolicy
	}{
		{"gamma=0.1", core.StepPolicy{Gamma: 0.1}},
		{"gamma=1", core.StepPolicy{Gamma: 1}},
		{"gamma=10", core.StepPolicy{Gamma: 10}},
		{"adaptive", core.StepPolicy{Adaptive: true, Gamma: 1}},
	}

	res := &Result{
		ID:    "fig5",
		Title: "Effect of fixed and adaptive step sizes (utility vs iteration)",
	}
	summary := &Table{
		Title:  "Convergence summary",
		Header: []string{"config", "final utility", "tail amplitude", "first feasible iter", "verdict"},
	}

	for _, cfg := range configs {
		ecfg := opts.engineConfig()
		ecfg.Step = cfg.step
		e, err := core.NewEngine(workload.Base(), ecfg)
		if err != nil {
			return nil, err
		}
		opts.attach(e)
		series := stats.NewSeries(cfg.name)
		firstFeasible := -1
		e.Run(iters, func(s core.Snapshot) {
			series.Append(float64(s.Iteration), s.Utility)
			if firstFeasible < 0 && s.Iteration > 5 && s.Feasible(1e-2) {
				firstFeasible = s.Iteration
			}
		})
		amp := series.TailAmplitude(0.2)
		verdict := "converged"
		switch {
		case amp > 0.05:
			verdict = "oscillating"
		case firstFeasible < 0:
			verdict = "slow (not yet feasible)"
		}
		res.Series = append(res.Series, series)
		summary.AddRow(cfg.name, f2(series.Last()), fmt.Sprintf("%.4f", amp),
			fmt.Sprintf("%d", firstFeasible), verdict)
	}
	res.Tables = append(res.Tables, summary)
	res.Notes = append(res.Notes,
		"paper: gamma=10 oscillates with high amplitude; gamma=1 converges around iteration 500;",
		"gamma=0.1 needs >1000 iterations; adaptive stabilizes faster and to a better value.",
		"note: the paper's absolute utility scale for Figure 5 is not recoverable from the text;",
		"the faithful parametrization converges to ≈188.7 (see DESIGN.md).",
	)
	return res, nil
}
