package eval

import (
	"fmt"

	"lla/internal/closedloop"
	"lla/internal/errcorr"
	"lla/internal/sim"
	"lla/internal/stats"
	"lla/internal/workload"
)

// Fig8 reproduces Figure 8, the system experiment with online model error
// correction (Section 6): the four-task prototype workload runs on the
// simulated testbed (quantum-scheduled CPUs with a reserved GC share) while
// LLA continuously assigns shares from its latency model. Mid-run, error
// correction is enabled: high-percentile measured latencies are compared
// against the model's prediction, the additive error is smoothed into the
// share functions, and the optimizer discovers it can meet the fast tasks'
// critical time with the minimum share (0.2), reallocating the surplus to
// the slow tasks (0.25) — the paper reports -23% / +32% share changes.
//
// The run is driven by the closedloop package, the library's packaging of
// the paper's deployed system shape.
func Fig8(opts Options) (*Result, error) {
	epochs, epochMs := 40, 1000.0
	enableAt := 15
	if opts.Quick {
		epochs, enableAt, epochMs = 14, 5, 600
	}

	loop, err := closedloop.New(
		workload.Prototype(),
		opts.engineConfig(),
		sim.Config{Scheduler: sim.Quantum, QuantumMs: 5, Seed: opts.Seed + 1},
		closedloop.Config{EpochMs: epochMs, Corrector: errcorr.Config{}},
	)
	if err != nil {
		return nil, err
	}
	opts.attach(loop.Engine())

	res := &Result{
		ID:    "fig8",
		Title: "System experiment with model error correction (prototype workload)",
	}
	fastShare := stats.NewSeries("fast-share")
	slowShare := stats.NewSeries("slow-share")
	fastErr := stats.NewSeries("fast-errMs")

	var beforeFast, beforeSlow float64
	observe := func(e closedloop.Epoch) {
		tSec := e.SimTimeMs / 1000
		fastShare.Append(tSec, e.Snapshot.Shares[0][0])
		slowShare.Append(tSec, e.Snapshot.Shares[2][0])
		fastErr.Append(tSec, e.ErrMs[0][0])
		if e.Index == enableAt-1 {
			beforeFast, beforeSlow = e.Snapshot.Shares[0][0], e.Snapshot.Shares[2][0]
		}
	}

	// Phase 1: pure model, no correction (the paper starts this way).
	loop.SetCorrection(false)
	if err := loop.RunEpochs(enableAt, observe); err != nil {
		return nil, err
	}
	// Phase 2: enable online error correction.
	loop.SetCorrection(true)
	if err := loop.RunEpochs(epochs-enableAt, observe); err != nil {
		return nil, err
	}
	afterFast, afterSlow := fastShare.Last(), slowShare.Last()

	res.Series = append(res.Series, fastShare, slowShare, fastErr)
	summary := &Table{
		Title:  "Share allocation before/after enabling error correction",
		Header: []string{"subtask class", "before", "after", "change%", "paper before", "paper after", "paper change%"},
	}
	summary.AddRow("fast (tasks 1-2)", f3(beforeFast), f3(afterFast),
		f1((afterFast/beforeFast-1)*100), "0.26", "0.20", "-23")
	summary.AddRow("slow (tasks 3-4)", f3(beforeSlow), f3(afterSlow),
		f1((afterSlow/beforeSlow-1)*100), "0.19", "0.25", "+32")
	res.Tables = append(res.Tables, summary)

	res.Notes = append(res.Notes,
		fmt.Sprintf("smoothed fast-subtask model error: %.1f ms (negative: model over-predicts)", fastErr.Last()),
		fmt.Sprintf("enactment policy pushed %d allocations over %d epochs", loop.Enactments(), epochs),
		"paper: after correction the fast subtasks drop to their minimum share (0.2) and the",
		"slow subtasks absorb the surplus (0.25); the model-based pre-correction shares differ",
		"slightly (we measure the model optimum 0.286/0.164, the paper observed 0.26/0.19 on",
		"real hardware).",
	)
	return res, nil
}
