package eval

import (
	"fmt"

	"lla/internal/admit"
	"lla/internal/core"
	"lla/internal/share"
	"lla/internal/stats"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// churnPool builds the static substrate of the churn experiment: four unit
// CPUs and one permanent resident pipeline (the engine always needs at
// least one task; it doubles as the long-lived service churn plays out
// around).
func churnPool() *workload.Workload {
	base := task.NewBuilder("base", 150).
		Trigger(task.Periodic(100)).
		Subtask("base-s0", "r0", 4).
		Subtask("base-s1", "r1", 3).
		Subtask("base-s2", "r2", 4).
		Chain("base-s0", "base-s1", "base-s2").
		MustBuild()
	return &workload.Workload{
		Name:  "churn",
		Tasks: []*task.Task{base},
		Resources: []share.Resource{
			{ID: "r0", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r1", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r2", Kind: share.CPU, Availability: 1, LagMs: 1},
			{ID: "r3", Kind: share.CPU, Availability: 1, LagMs: 1},
		},
		Curves: map[string]utility.Curve{"base": utility.Linear{K: 2, CMs: 150}},
	}
}

// churnTemplates are the task shapes arrivals are drawn from. "burst" has a
// deadline tight enough that it only fits on uncongested resources — it is
// what the admission gates exist to say no to.
var churnTemplates = []workload.ChurnTemplate{
	{Name: "web", CriticalMs: 120, StageExecMs: []float64{4, 3}, UtilityK: 2},
	{Name: "stream", CriticalMs: 90, StageExecMs: []float64{5, 4, 3}, UtilityK: 2},
	{Name: "burst", CriticalMs: 17, StageExecMs: []float64{6, 5}, UtilityK: 2},
}

// churnPolicyRun is the measured outcome of replaying one churn trace under
// one admission policy.
type churnPolicyRun struct {
	label      string
	offered    int
	admitted   int
	rejected   map[string]int // by gate stage
	departures int
	rebalances int
	violations int // events after which the live system was infeasible
	events     int
	sumReconv  int
	// warmupRounds is how many rounds the substrate engine took to converge
	// before the trace replay began (-1 = budget exhausted).
	warmupRounds int
	utility      *stats.Series
	reconv       *stats.Series
	finalUtil    float64
	resident     int
}

// replayChurn drives one controller through the trace. Every event is
// followed by a rebalance opportunity and a feasibility probe of the live
// engine: an event whose settled state still violates a critical time or a
// resource capacity beyond tol counts as a violation event.
func replayChurn(opts Options, trace []workload.ChurnEvent, cfg admit.Config, label string) (*churnPolicyRun, error) {
	eng, err := core.NewEngine(churnPool(), opts.engineConfig())
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	opts.attach(eng)
	warmSnap, warmOK := eng.RunUntilConverged(3000, 1e-7, 20, 1e-3)

	ctrl := admit.New(eng, cfg)
	ctrl.UsePlacer(admit.NewPlacer(admit.PlacerConfig{}))
	if opts.Observer != nil {
		ctrl.Observe(opts.Observer)
	}

	run := &churnPolicyRun{
		label:        label,
		rejected:     make(map[string]int),
		utility:      stats.NewSeries("utility-" + label),
		reconv:       stats.NewSeries("reconverge-" + label),
		warmupRounds: -1,
	}
	if warmOK {
		run.warmupRounds = warmSnap.Iteration
	}
	const tol = 1e-3
	for _, ev := range trace {
		if ev.Arrival {
			run.offered++
			tpl := churnTemplates[ev.Template]
			// Placeholder bindings: the price-guided placer rebinds each stage.
			ph := make([]string, len(tpl.StageExecMs))
			for i := range ph {
				ph[i] = "r0"
			}
			t, curve, err := tpl.Instantiate(ev.Name, ph)
			if err != nil {
				return nil, err
			}
			d, err := ctrl.OfferPlaced(admit.Candidate{Task: t, Curve: curve})
			if err != nil {
				return nil, err
			}
			if d.Admitted {
				run.admitted++
				run.sumReconv += d.ReconvergeIters
				run.reconv.Append(float64(run.events), float64(d.ReconvergeIters))
			} else {
				run.rejected[d.Stage]++
			}
		} else {
			d, err := ctrl.Remove(ev.Name)
			if err != nil {
				return nil, err
			}
			if d.Admitted {
				run.departures++
				run.sumReconv += d.ReconvergeIters
			}
		}
		if d, moved, err := ctrl.MaybeRebalance(); err != nil {
			return nil, err
		} else if moved {
			run.rebalances++
			run.sumReconv += d.ReconvergeIters
		}
		run.events++
		pr := eng.Probe()
		run.utility.Append(float64(run.events), pr.Utility)
		if pr.MaxResourceViolation > tol || pr.MaxPathViolationFrac > tol {
			run.violations++
		}
	}
	run.finalUtil = eng.Probe().Utility
	run.resident = len(eng.Problem().Tasks)
	return run, nil
}

// Churn evaluates price-driven admission control under a high-churn arrival
// process (Section 3.2 layers admission control above the latency
// assignment; Section 5.4 supplies the sufficient test the trial gate
// runs). One seeded Poisson trace of arriving/departing pipeline instances
// is replayed twice: once gated by the full admission controller (static
// floors, price screen, warm-started trial optimization) and once under the
// admit-everything baseline. The gated policy must keep the live system
// free of critical-time violations; the baseline shows what churn does to a
// system that cannot say no.
func Churn(opts Options) (*Result, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 7
	}
	horizon := 2400.0
	if opts.Quick {
		horizon = 700
	}
	trace, err := workload.GenerateChurn(workload.ChurnConfig{
		Seed:               seed,
		MeanInterarrivalMs: 40,
		MeanLifetimeMs:     260,
		HorizonMs:          horizon,
		Templates:          churnTemplates,
	})
	if err != nil {
		return nil, err
	}

	gated, err := replayChurn(opts, trace, admit.Config{}, "gated")
	if err != nil {
		return nil, err
	}
	baseline, err := replayChurn(opts, trace, admit.Config{AdmitAll: true}, "admit-all")
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "churn",
		Title: fmt.Sprintf("Admission control under churn (seed %d, %d events over %.0f ms)", seed, len(trace), horizon),
	}
	res.RoundsToConverge = gated.warmupRounds
	summary := &Table{
		Title: "Policy comparison over one trace",
		Header: []string{"policy", "offered", "admitted", "rej static", "rej price",
			"rej trial", "rej quar", "departed", "rebalanced", "viol events", "viol rate", "mean reconv", "final util", "resident"},
	}
	for _, run := range []*churnPolicyRun{gated, baseline} {
		meanReconv := 0.0
		if n := run.admitted + run.departures + run.rebalances; n > 0 {
			meanReconv = float64(run.sumReconv) / float64(n)
		}
		summary.AddRow(run.label,
			fmt.Sprintf("%d", run.offered),
			fmt.Sprintf("%d", run.admitted),
			fmt.Sprintf("%d", run.rejected[admit.StageStatic]+run.rejected[admit.StagePlace]),
			fmt.Sprintf("%d", run.rejected[admit.StagePrice]),
			fmt.Sprintf("%d", run.rejected[admit.StageTrial]),
			fmt.Sprintf("%d", run.rejected[admit.StageQuarantine]),
			fmt.Sprintf("%d", run.departures),
			fmt.Sprintf("%d", run.rebalances),
			fmt.Sprintf("%d", run.violations),
			f3(float64(run.violations)/float64(max(run.events, 1))),
			f1(meanReconv),
			f1(run.finalUtil),
			fmt.Sprintf("%d", run.resident),
		)
	}
	res.Tables = append(res.Tables, summary)
	res.Series = append(res.Series, gated.utility, baseline.utility, gated.reconv)

	res.Notes = append(res.Notes,
		fmt.Sprintf("gated violation events: %d (acceptance: 0 — admitted work always fits)", gated.violations),
		fmt.Sprintf("admit-all violation events: %d of %d (%.0f%% of the trace is spent infeasible)",
			baseline.violations, baseline.events, 100*float64(baseline.violations)/float64(max(baseline.events, 1))),
		"decisions are event-counted and price-driven: the same seed yields the same decision log at any worker count.",
	)
	if gated.violations == 0 && baseline.violations > gated.violations {
		res.Notes = append(res.Notes, "verdict: gated admission beats admit-everything on constraint violations, as required.")
	} else {
		res.Notes = append(res.Notes, "verdict: FAILED — gated admission did not beat the admit-everything baseline.")
	}
	return res, nil
}
