package eval

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"lla/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("render = %q", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestTable1Reproduction(t *testing.T) {
	res, err := Table1(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" || len(res.Tables) != 3 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	// All 21 subtasks present.
	if len(res.Tables[0].Rows) != 21 {
		t.Errorf("latency rows = %d, want 21", len(res.Tables[0].Rows))
	}
	// Max relative error column stays under 10% even in quick mode.
	for _, row := range res.Tables[0].Rows {
		rel, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("bad rel.err cell %q", row[6])
		}
		if rel > 10 {
			t.Errorf("%s %s: rel err %.2f%% > 10%%", row[0], row[1], rel)
		}
	}
	// Critical paths within their critical times and within 2% below.
	for _, row := range res.Tables[1].Rows {
		slack, _ := strconv.ParseFloat(row[4], 64)
		if slack < -0.2 || slack > 2.5 {
			t.Errorf("task %s slack %.2f%% outside [0, 2.5]", row[0], slack)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig5Reproduction(t *testing.T) {
	res, err := Fig5(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	byName := map[string]int{}
	for i, s := range res.Series {
		byName[s.Name] = i
	}
	// gamma=10 oscillates much more than gamma=1 in the tail.
	amp10 := res.Series[byName["gamma=10"]].TailAmplitude(0.2)
	amp1 := res.Series[byName["gamma=1"]].TailAmplitude(0.2)
	ampAd := res.Series[byName["adaptive"]].TailAmplitude(0.2)
	if amp10 < 5*amp1 {
		t.Errorf("gamma=10 amplitude %v should dwarf gamma=1 amplitude %v", amp10, amp1)
	}
	if ampAd > 0.01 {
		t.Errorf("adaptive amplitude %v should be tiny", ampAd)
	}
	// Adaptive reaches the optimum.
	if got := res.Series[byName["adaptive"]].Last(); math.Abs(got-188.7) > 1 {
		t.Errorf("adaptive final utility = %v, want ≈188.7", got)
	}
}

func TestFig6Reproduction(t *testing.T) {
	res, err := Fig6(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 || len(res.Tables) != 1 {
		t.Fatalf("unexpected shape")
	}
	// Utility grows roughly linearly: utility/task within 25% across scales.
	var perTask []float64
	for _, row := range res.Tables[0].Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		perTask = append(perTask, v)
	}
	for _, v := range perTask[1:] {
		if math.Abs(v-perTask[0])/perTask[0] > 0.25 {
			t.Errorf("utility per task varies too much: %v", perTask)
		}
	}
	// Convergence speed roughly independent of task count: all feasible
	// within the quick budget.
	for _, row := range res.Tables[0].Rows {
		it, _ := strconv.ParseFloat(row[1], 64)
		if it < 0 {
			t.Errorf("%s tasks never feasible", row[0])
		}
	}
}

func TestFig7Reproduction(t *testing.T) {
	res, err := Fig7(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The unschedulable verdict must hold: either residual constraint
	// violation or sustained oscillation.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "schedulable verdict: false") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected unschedulable verdict, notes: %v", res.Notes)
	}
	if len(res.Series) != 9 { // utility + 8 resources
		t.Errorf("series = %d, want 9", len(res.Series))
	}
}

func TestFig8Reproduction(t *testing.T) {
	res, err := Fig8(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Tables[0].Rows[0] // fast
	before, _ := strconv.ParseFloat(row[1], 64)
	after, _ := strconv.ParseFloat(row[2], 64)
	if math.Abs(before-10.0/35) > 0.01 {
		t.Errorf("fast before = %v, want ≈0.286 (model optimum)", before)
	}
	if math.Abs(after-0.2) > 0.015 {
		t.Errorf("fast after = %v, want ≈0.20 (minimum share)", after)
	}
	rowSlow := res.Tables[0].Rows[1]
	afterSlow, _ := strconv.ParseFloat(rowSlow[2], 64)
	if math.Abs(afterSlow-0.25) > 0.015 {
		t.Errorf("slow after = %v, want ≈0.25", afterSlow)
	}
	// The learned error is clearly negative (model over-predicts).
	if last := res.Series[2].Last(); last > -5 {
		t.Errorf("learned fast error = %v ms, want clearly negative", last)
	}
}

func TestAllExperimentsRender(t *testing.T) {
	runs := []func(Options) (*Result, error){Table1, Fig5, Fig6, Fig7, Fig8}
	for i, run := range runs {
		res, err := run(Options{Quick: true, Seed: 2})
		if err != nil {
			t.Fatalf("experiment %d: %v", i, err)
		}
		out := res.Render()
		if !strings.Contains(out, res.ID) || len(out) < 100 {
			t.Errorf("experiment %s: render too small", res.ID)
		}
	}
}

func TestAsciiPlot(t *testing.T) {
	s1 := statsSeries("a", []float64{0, 1, 2, 3}, []float64{0, 1, 4, 9})
	s2 := statsSeries("b", []float64{0, 1, 2, 3}, []float64{9, 4, 1, 0})
	out := AsciiPlot(40, 10, s1, s2)
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Errorf("legend missing: %q", out)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "+--") {
		t.Errorf("axes missing: %q", out)
	}
	// Degenerate inputs.
	if out := AsciiPlot(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	flat := statsSeries("flat", []float64{0, 1}, []float64{5, 5})
	if out := AsciiPlot(40, 10, flat); out == "" || strings.Contains(out, "NaN") {
		t.Errorf("flat plot = %q", out)
	}
	// Tiny dimensions are floored.
	if out := AsciiPlot(1, 1, s1); out == "" {
		t.Error("tiny plot empty")
	}
}

func statsSeries(name string, xs, ys []float64) *stats.Series {
	s := stats.NewSeries(name)
	for i := range xs {
		s.Append(xs[i], ys[i])
	}
	return s
}
