package eval

import (
	"fmt"
	"math"

	"lla/internal/core"
	"lla/internal/price"
	"lla/internal/stats"
	"lla/internal/workload"
)

// solverDevTol is the fixed-point agreement tolerance: a solver has "reached
// the gradient fixed point" when every resource price, path price and
// subtask latency is within this relative deviation of the deep reference
// run's values.
const solverDevTol = 1e-6

// Solvers compares the pluggable price dynamics (DESIGN.md §12) on the
// Figure 6 scalability workloads. For each workload size it first runs the
// reference gradient projection to depth — that run's prices, path prices
// and latencies define the fixed point — then measures, for every solver at
// every worker count, how many rounds a fresh engine needs to bring all
// three within solverDevTol of it. Two invariants are asserted as the sweep
// runs: every solver reaches the same fixed point (the accelerated dynamics
// change the trajectory, never the optimum), and a solver's rounds count is
// identical at every worker count (the sharded iteration is bitwise
// deterministic). A second measurement runs each solver under the KKT
// stationarity criterion (core.RunUntilKKT), which certifies the fixed point
// from the optimality conditions alone rather than against a reference
// trajectory.
func Solvers(opts Options) (*Result, error) {
	maxRounds, refRounds := 3000, 3000
	factors := []int{1, 2, 4}
	if opts.Quick {
		maxRounds, refRounds = 1200, 1200
		factors = []int{1, 2}
	}
	// Worker counts to cross-check: the serial path and the config's own
	// (parallel) setting. When the options already request serial, one pass
	// suffices.
	workerSweep := []int{1, opts.Workers}
	if opts.Workers == 1 {
		workerSweep = []int{1}
	}

	res := &Result{
		ID:    "solvers",
		Title: "Price-dynamics solver comparison (fig6 scalability workloads)",
	}
	summary := &Table{
		Title:  "Rounds to the gradient fixed point (dev ≤ 1e-6 on mu, lambda, latencies)",
		Header: []string{"tasks", "solver", "rounds", "speedup", "kkt rounds", "max dev", "fallbacks"},
	}

	const critScale = 8
	for _, factor := range factors {
		w, err := workload.Replicate(workload.Base(), factor, critScale)
		if err != nil {
			return nil, err
		}
		ref, err := core.NewEngine(w, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		opts.attach(ref)
		ref.Run(refRounds, nil)
		refSnap := ref.Snapshot()

		gradientRounds := -1
		for _, solver := range price.Solvers() {
			var rounds, kktRounds int
			var dev float64
			var fallbacks uint64
			for wi, workers := range workerSweep {
				cfg := opts.engineConfig()
				cfg.Workers = workers
				cfg.PriceSolver = solver
				e, err := core.NewEngine(w, cfg)
				if err != nil {
					ref.Close()
					return nil, err
				}
				opts.attach(e)
				r := -1
				for i := 1; i <= maxRounds; i++ {
					e.Step()
					if maxSolverDev(e, ref, refSnap) <= solverDevTol {
						r = i
						break
					}
				}
				d := maxSolverDev(e, ref, refSnap)
				fb := e.SolverFallbacks()
				e.Close()
				if r < 0 {
					ref.Close()
					return nil, fmt.Errorf("eval: solver %s did not reach the gradient fixed point within %d rounds on the %d-task workload (dev %.3g)",
						solver, maxRounds, 3*factor, d)
				}
				if wi == 0 {
					rounds, dev, fallbacks = r, d, fb
				} else if r != rounds {
					ref.Close()
					return nil, fmt.Errorf("eval: solver %s rounds differ across worker counts (%d serial vs %d at workers=%d) — sharded iteration must be bitwise deterministic",
						solver, rounds, r, workers)
				}
			}

			// Independent certification: rounds to KKT stationarity, judged
			// from the optimality conditions rather than the reference run.
			kcfg := opts.engineConfig()
			kcfg.PriceSolver = solver
			ke, err := core.NewEngine(w, kcfg)
			if err != nil {
				ref.Close()
				return nil, err
			}
			opts.attach(ke)
			ksnap, kok := ke.RunUntilKKT(maxRounds, 1e-9, 3, 1e-6)
			ke.Close()
			kktRounds = -1
			if kok {
				kktRounds = ksnap.Iteration
			}

			if solver == price.SolverGradient {
				gradientRounds = rounds
				if res.RoundsToConverge == 0 || rounds > res.RoundsToConverge {
					res.RoundsToConverge = rounds
				}
			}
			speedup := "1.0x"
			if solver != price.SolverGradient && rounds > 0 {
				speedup = fmt.Sprintf("%.1fx", float64(gradientRounds)/float64(rounds))
			}
			summary.AddRow(fmt.Sprintf("%d", 3*factor), string(solver),
				fmt.Sprintf("%d", rounds), speedup, fmt.Sprintf("%d", kktRounds),
				fmt.Sprintf("%.2g", dev), fmt.Sprintf("%d", fallbacks))

			res.Series = append(res.Series, solverSeries(factor, solver, rounds))
		}
		ref.Close()
	}
	res.Tables = append(res.Tables, summary)
	res.Notes = append(res.Notes,
		"every solver reaches the reference gradient fixed point (asserted at 1e-6 on prices, path prices, latencies)",
		"rounds are identical at every worker count (asserted); each broadcast round is a full price round in the distributed runtime",
	)
	return res, nil
}

// solverSeries encodes one (workload, solver) rounds measurement as a
// single-point series so -csv exports carry the raw sweep data.
func solverSeries(factor int, solver price.Solver, rounds int) *stats.Series {
	s := stats.NewSeries(fmt.Sprintf("%d-tasks-%s", 3*factor, solver))
	s.Append(float64(3*factor), float64(rounds))
	return s
}

// maxSolverDev is the largest relative deviation between an engine's current
// point and the reference fixed point, over resource prices, subtask
// latencies and path prices.
func maxSolverDev(e, ref *core.Engine, refSnap core.Snapshot) float64 {
	d := 0.0
	rel := func(x, y float64) float64 { return math.Abs(x-y) / math.Max(1, math.Abs(y)) }
	s := e.Snapshot()
	for ri := range refSnap.Mu {
		if v := rel(s.Mu[ri], refSnap.Mu[ri]); v > d {
			d = v
		}
	}
	for ti := range refSnap.LatMs {
		for si := range refSnap.LatMs[ti] {
			if v := rel(s.LatMs[ti][si], refSnap.LatMs[ti][si]); v > d {
				d = v
			}
		}
		for pi := range ref.Controller(ti).Lambda {
			if v := rel(e.Controller(ti).Lambda[pi], ref.Controller(ti).Lambda[pi]); v > d {
				d = v
			}
		}
	}
	return d
}
