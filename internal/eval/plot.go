package eval

import (
	"fmt"
	"math"
	"strings"

	"lla/internal/stats"
)

// plotRunes mark the series in an ASCII plot, cycling when there are more
// series than runes.
var plotRunes = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&', '~'}

// AsciiPlot renders one or more series as a terminal chart: y is scaled to
// the given height in rows, x to the given width in columns; each series is
// drawn with its own marker. It is intentionally simple — lla-sim uses it
// so the paper's figures are legible straight from the terminal, with the
// CSV output available for real plotting.
func AsciiPlot(width, height int, series ...*stats.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.Y {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			any = true
			xLo = math.Min(xLo, s.X[i])
			xHi = math.Max(xHi, s.X[i])
			yLo = math.Min(yLo, s.Y[i])
			yHi = math.Max(yHi, s.Y[i])
		}
	}
	if !any {
		return "(no data)\n"
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := plotRunes[si%len(plotRunes)]
		for i := range s.Y {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int((s.X[i] - xLo) / (xHi - xLo) * float64(width-1))
			row := height - 1 - int((s.Y[i]-yLo)/(yHi-yLo)*float64(height-1))
			if grid[row][col] == ' ' || grid[row][col] == marker {
				grid[row][col] = marker
			} else {
				grid[row][col] = '?' // collision between series
			}
		}
	}

	var b strings.Builder
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.4g |", yHi)
		case height - 1:
			fmt.Fprintf(&b, "%10.4g |", yLo)
		default:
			b.WriteString("           |")
		}
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("           +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "            %-10.4g%*s\n", xLo, width-10, fmt.Sprintf("%.4g", xHi))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotRunes[si%len(plotRunes)], s.Name))
	}
	fmt.Fprintf(&b, "            %s\n", strings.Join(legend, "  "))
	return b.String()
}
