package eval

import (
	"fmt"
	"math"

	"lla/internal/core"
	"lla/internal/stats"
	"lla/internal/workload"
)

// Fig7 reproduces Figure 7: using LLA to test the schedulability of a
// workload (Section 5.4). The six-task workload keeps the original critical
// times, making it unschedulable; the utility and per-resource share sums
// fail to converge and the critical-path latencies overshoot their
// constraints (the paper reports ratios of 1.75-2.41).
func Fig7(opts Options) (*Result, error) {
	iters := 500
	if opts.Quick {
		iters = 150
	}
	w, err := workload.Replicate(workload.Base(), 2, 1) // unscaled critical times
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(w, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	opts.attach(e)

	res := &Result{
		ID:    "fig7",
		Title: "Using LLA to test workload schedulability (6 tasks, unscaled critical times)",
	}
	utility := stats.NewSeries("utility")
	shareSeries := make([]*stats.Series, len(w.Resources))
	for ri, r := range w.Resources {
		shareSeries[ri] = stats.NewSeries("share-" + r.ID)
	}
	var last core.Snapshot
	minRatio, maxRatio := math.Inf(1), 0.0
	e.Run(iters, func(s core.Snapshot) {
		utility.Append(float64(s.Iteration), s.Utility)
		for ri := range shareSeries {
			shareSeries[ri].Append(float64(s.Iteration), s.ShareSums[ri])
		}
		last = s
	})
	for ti := range last.CriticalPathMs {
		ratio := last.CriticalPathMs[ti] / last.CriticalTimeMs[ti]
		minRatio = math.Min(minRatio, ratio)
		maxRatio = math.Max(maxRatio, ratio)
	}
	res.Series = append(res.Series, utility)
	res.Series = append(res.Series, shareSeries...)

	summary := &Table{
		Title:  "Schedulability diagnostics after the run",
		Header: []string{"metric", "value", "paper"},
	}
	summary.AddRow("utility tail amplitude", fmt.Sprintf("%.4f", utility.TailAmplitude(0.3)), "no convergence")
	summary.AddRow("max resource violation", f3(last.MaxResourceViolation), "shares not converged")
	summary.AddRow("max path violation frac", f3(last.MaxPathViolationFrac), "constraints violated")
	summary.AddRow("crit.path / crit.time min", f2(minRatio), "1.75")
	summary.AddRow("crit.path / crit.time max", f2(maxRatio), "2.41")
	res.Tables = append(res.Tables, summary)

	feasible := last.Feasible(1e-3) && utility.TailAmplitude(0.3) < 1e-3
	res.Notes = append(res.Notes,
		fmt.Sprintf("schedulable verdict: %v (an unschedulable workload must not converge to a feasible point)", feasible),
		"paper: across all tasks the critical path latencies are 1.75-2.41x the constraint;",
		"our price dynamics settle the infeasible point closer to the constraint surface —",
		"the qualitative signal (violated constraints, non-converging shares) is the same.",
	)
	return res, nil
}
