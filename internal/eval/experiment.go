// Package eval is the experiment harness: one runner per table/figure of
// the paper's evaluation (Table 1, Figures 5-8), each regenerating the
// artifact's data — workload, parameter sweep, optimizer/simulator run and
// the rows or series the paper reports — plus comparison against the
// published reference values. cmd/lla-sim and the top-level benchmarks are
// thin wrappers around this package.
package eval

import (
	"fmt"
	"strings"

	"lla/internal/core"
	"lla/internal/obs"
	"lla/internal/price"
	"lla/internal/stats"
)

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns an aligned text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV returns a comma-separated rendering.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Result is one experiment's output.
type Result struct {
	// ID identifies the paper artifact (e.g. "table1", "fig5").
	ID string
	// Title describes the experiment.
	Title string
	// Tables holds the produced tables.
	Tables []*Table
	// Series holds the produced figure series.
	Series []*stats.Series
	// Notes records comparison findings (paper vs measured).
	Notes []string
	// RoundsToConverge records how many optimizer rounds the experiment's
	// reference engine took to meet its convergence criterion (0 = the
	// experiment does not measure convergence, -1 = it did not converge
	// within budget). Each round is one full price round, so under the
	// distributed runtime this is the broadcast-round count.
	RoundsToConverge int
}

// Render returns the full text report of the experiment.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	if r.RoundsToConverge != 0 {
		fmt.Fprintf(&b, "rounds_to_converge: %d\n\n", r.RoundsToConverge)
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	if len(r.Series) > 0 {
		// Plot at most four series to keep the terminal chart legible; the
		// CSV below carries everything.
		plotted := r.Series
		if len(plotted) > 4 {
			plotted = plotted[:4]
		}
		b.WriteString(AsciiPlot(64, 14, plotted...))
		b.WriteByte('\n')
		b.WriteString("series (downsampled):\n")
		b.WriteString(stats.MergeCSV(downsampleAll(r.Series, 26)...))
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// downsampleAll bounds each series for display.
func downsampleAll(series []*stats.Series, n int) []*stats.Series {
	out := make([]*stats.Series, len(series))
	for i, s := range series {
		out[i] = s.Downsample(n)
	}
	return out
}

// Options tunes experiment budgets; the zero value uses each experiment's
// paper-faithful defaults. Quick shrinks budgets for unit tests. Workers
// sets the optimizer's shard count (0 = GOMAXPROCS, 1 = serial); the
// engine's sharded iteration is bitwise-deterministic, so the artifacts are
// identical for every setting — only wall-clock time changes.
type Options struct {
	Quick   bool
	Seed    int64
	Workers int
	// Sparse selects the engine iteration path (core.SparseAuto resolves to
	// the incremental active-set path; core.SparseOff forces the dense
	// sweep). The two paths are bitwise identical, so the artifacts do not
	// depend on the setting — only wall-clock time does.
	Sparse core.SparseMode
	// Solver selects the resource-price dynamics ("" = the reference
	// gradient projection). Unlike Workers/Sparse this DOES change the
	// artifacts: accelerated solvers follow a different price trajectory to
	// the same fixed point, so iteration-indexed series and
	// rounds-to-converge counts shift. The solvers experiment ignores it (it
	// sweeps all solvers itself).
	Solver price.Solver
	// Observer, when non-nil, is attached to every engine an experiment
	// creates, so a run streams per-iteration telemetry (KKT residuals,
	// prices, utilities — see internal/obs) without changing the artifacts:
	// observation is read-only and the engines remain bitwise-deterministic.
	// Experiments that run several engines in sequence (sweeps, ablations)
	// reattach the same observer to each; samples carry iteration numbers
	// that restart at 1 per engine.
	Observer *obs.Observer
	// CheckpointDir roots crash-safe checkpoints (internal/recover) for the
	// experiments that write them — currently the soak. Empty uses a
	// temporary directory that does not survive the process.
	CheckpointDir string
	// CheckpointEvery is the churn-event period between periodic checkpoint
	// saves (0 = the experiment's default). Checkpoints are also written on
	// convergence and immediately before every simulated crash.
	CheckpointEvery int
	// Wire selects the message framing for experiments that run the
	// distributed runtime (currently the soak and the fleet): "binary"
	// round-trips every delivery through the internal/wire codec
	// (PROTOCOL.md), "" or "json" keeps the legacy JSON framing. Results are
	// bitwise identical either way — the codec is a transparent transport
	// layer.
	Wire string
	// Shards sets the fleet experiment's shard count (0 = the experiment's
	// default). Other experiments ignore it.
	Shards int
	// ShardWorkers sets the fleet experiment's concurrent shard sweeps per
	// aggregator round (0 = min(shards, GOMAXPROCS), 1 = serial). Bitwise
	// identical artifacts at every setting — the fleet asserts it. Other
	// experiments ignore it.
	ShardWorkers int
}

// attach hooks the configured observer (if any) onto an engine. Every
// experiment calls it right after core.NewEngine.
func (o Options) attach(e *core.Engine) { e.Observe(o.Observer) }

// engineConfig is the core.Config every experiment starts from; runners that
// sweep additional knobs (step sizers, weight modes) amend the returned
// value before handing it to core.NewEngine.
func (o Options) engineConfig() core.Config {
	return core.Config{Workers: o.Workers, Sparse: o.Sparse, PriceSolver: o.Solver}
}

// f1, f2, f3 are numeric cell formatters.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
