package eval

import (
	"strings"
	"testing"
)

// TestChurnQuick runs the churn experiment in quick mode and checks the
// acceptance property: the gated policy keeps the live system feasible at
// every event while the admit-everything baseline does not.
func TestChurnQuick(t *testing.T) {
	res, err := Churn(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if strings.Contains(out, "verdict: FAILED") {
		t.Fatalf("churn verdict failed:\n%s", out)
	}
	if !strings.Contains(out, "gated violation events: 0") {
		t.Fatalf("gated policy admitted infeasible work:\n%s", out)
	}
}

// TestChurnDeterministicAcrossWorkers renders the experiment at two worker
// counts; the engine's sharded iteration is bitwise-deterministic, so the
// reports must match byte for byte.
func TestChurnDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Churn(Options{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Churn(Options{Quick: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != sharded.Render() {
		t.Fatalf("churn report differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=3 ---\n%s",
			serial.Render(), sharded.Render())
	}
}
