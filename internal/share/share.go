// Package share implements the LLA paper's resource-share model (Sections 3
// and 4.4): resources scheduled by proportional share, and the share
// function share_r(s, lat) = (c_s + l_r) / lat (Equation 10) that maps a
// subtask's allotted latency to the fraction of the resource it needs, plus
// the additively error-corrected variant used by the prototype (Section 6.3).
package share

import (
	"fmt"
	"math"
)

// Func maps between a subtask's latency and its resource share. LLA assumes
// share functions that are strictly convex, continuously differentiable and
// decreasing in latency (Section 4.2).
type Func interface {
	// Share returns the resource fraction required to achieve latency
	// latMs.
	Share(latMs float64) float64
	// Deriv returns dShare/dLat at latMs; it is negative for a valid share
	// function.
	Deriv(latMs float64) float64
	// LatencyFor inverts Share: the latency achieved when the subtask holds
	// the given share.
	LatencyFor(share float64) float64
}

// WCETLag is the paper's Equation 10: share(lat) = (c + l) / lat, where c is
// the subtask's worst-case execution time and l the resource's scheduling
// lag. ErrMs is the additive model-error correction of Section 6.3: the
// model treats the effective latency budget as (lat - ErrMs), so a negative
// error (model over-predicts) lets the same latency be met with less share.
type WCETLag struct {
	// ExecMs is the subtask WCET c_s in milliseconds.
	ExecMs float64
	// LagMs is the resource scheduling lag l_r in milliseconds.
	LagMs float64
	// ErrMs is the smoothed additive prediction error (measured minus
	// modeled latency); zero when correction is disabled.
	ErrMs float64
}

var _ Func = WCETLag{}

// numerator is the fixed cost c + l the share function amortizes over the
// latency budget.
func (w WCETLag) numerator() float64 { return w.ExecMs + w.LagMs }

// effectiveLat applies the error correction and floors the budget at a tiny
// positive value so shares stay finite.
func (w WCETLag) effectiveLat(latMs float64) float64 {
	lat := latMs - w.ErrMs
	if lat < 1e-9 {
		lat = 1e-9
	}
	return lat
}

// Share implements Func.
func (w WCETLag) Share(latMs float64) float64 {
	return w.numerator() / w.effectiveLat(latMs)
}

// Deriv implements Func.
func (w WCETLag) Deriv(latMs float64) float64 {
	lat := w.effectiveLat(latMs)
	return -w.numerator() / (lat * lat)
}

// LatencyFor implements Func.
func (w WCETLag) LatencyFor(share float64) float64 {
	if share <= 0 {
		return math.Inf(1)
	}
	return w.numerator()/share + w.ErrMs
}

// Validate checks the model parameters.
func (w WCETLag) Validate() error {
	if w.ExecMs <= 0 {
		return fmt.Errorf("share: WCET must be positive, got %v", w.ExecMs)
	}
	if w.LagMs < 0 {
		return fmt.Errorf("share: lag must be non-negative, got %v", w.LagMs)
	}
	return nil
}

// Resource is a schedulable resource: a CPU or a network link managed by a
// proportional-share scheduler.
type Resource struct {
	// ID uniquely identifies the resource within a workload.
	ID string
	// Kind is informational (CPU or network link); the optimizer treats all
	// resources uniformly, as the paper prescribes.
	Kind Kind
	// Availability is B_r in [0,1]: the fraction of the resource available
	// to the competing tasks (capacity minus reservations such as the
	// prototype's 0.1 garbage-collector share).
	Availability float64
	// LagMs is the proportional-share scheduling lag l_r used by the share
	// model for subtasks on this resource.
	LagMs float64
}

// Kind labels a resource's physical type.
type Kind int

const (
	// CPU is a processing resource on a node.
	CPU Kind = iota + 1
	// Link is a network-bandwidth resource on a link between nodes.
	Link
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Link:
		return "link"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Validate checks the resource parameters.
func (r Resource) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("share: resource has empty ID")
	}
	if r.Availability <= 0 || r.Availability > 1 {
		return fmt.Errorf("share: resource %s availability %v outside (0,1]", r.ID, r.Availability)
	}
	if r.LagMs < 0 {
		return fmt.Errorf("share: resource %s lag %v negative", r.ID, r.LagMs)
	}
	if r.Kind != CPU && r.Kind != Link {
		return fmt.Errorf("share: resource %s has unknown kind %d", r.ID, int(r.Kind))
	}
	return nil
}
