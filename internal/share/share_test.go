package share

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWCETLagShare(t *testing.T) {
	w := WCETLag{ExecMs: 2, LagMs: 1}
	if got := w.Share(10); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Share(10) = %v, want 0.3", got)
	}
	if got := w.LatencyFor(0.3); math.Abs(got-10) > 1e-12 {
		t.Errorf("LatencyFor(0.3) = %v, want 10", got)
	}
	if got := w.Deriv(10); math.Abs(got-(-0.03)) > 1e-12 {
		t.Errorf("Deriv(10) = %v, want -0.03", got)
	}
}

func TestWCETLagErrorCorrection(t *testing.T) {
	// Negative error (model over-predicted) reduces the share needed for
	// the same latency target.
	plain := WCETLag{ExecMs: 5, LagMs: 5}
	corrected := WCETLag{ExecMs: 5, LagMs: 5, ErrMs: -25}
	if corrected.Share(50) >= plain.Share(50) {
		t.Errorf("negative error should reduce share: %v >= %v", corrected.Share(50), plain.Share(50))
	}
	// share(lat) with err: (c+l)/(lat-err) = 10/(50+25) = 0.1333.
	if got := corrected.Share(50); math.Abs(got-10.0/75) > 1e-12 {
		t.Errorf("corrected Share(50) = %v, want %v", got, 10.0/75)
	}
	// Inverse round trip with error applied.
	if got := corrected.LatencyFor(corrected.Share(50)); math.Abs(got-50) > 1e-9 {
		t.Errorf("round trip = %v, want 50", got)
	}
}

func TestWCETLagDegenerateInputs(t *testing.T) {
	w := WCETLag{ExecMs: 1, LagMs: 0}
	if got := w.Share(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Share(0) = %v, want large finite", got)
	}
	if got := w.LatencyFor(0); !math.IsInf(got, 1) {
		t.Errorf("LatencyFor(0) = %v, want +Inf", got)
	}
	// Positive error larger than the latency: budget floors at epsilon.
	e := WCETLag{ExecMs: 1, ErrMs: 100}
	if got := e.Share(10); got <= 0 || math.IsInf(got, 0) {
		t.Errorf("Share with large positive error = %v, want large finite positive", got)
	}
}

func TestWCETLagValidate(t *testing.T) {
	if err := (WCETLag{ExecMs: 1}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if err := (WCETLag{ExecMs: 0}).Validate(); err == nil {
		t.Error("zero WCET should fail")
	}
	if err := (WCETLag{ExecMs: 1, LagMs: -1}).Validate(); err == nil {
		t.Error("negative lag should fail")
	}
}

// Properties required by LLA's convergence analysis: share is positive,
// strictly decreasing and strictly convex in latency, and LatencyFor is its
// inverse.
func TestWCETLagConvexityProperty(t *testing.T) {
	f := func(cu, lu, au, bu uint16) bool {
		c := 0.5 + float64(cu)/100
		l := float64(lu) / 100
		a := 1 + float64(au)/10
		b := a + 0.5 + float64(bu)/10
		w := WCETLag{ExecMs: c, LagMs: l}
		sa, sb := w.Share(a), w.Share(b)
		if sa <= 0 || sb <= 0 || sa <= sb {
			return false // positive, strictly decreasing
		}
		if w.Deriv(a) >= 0 || w.Deriv(b) >= 0 {
			return false
		}
		// Convexity: derivative increases (toward zero) with latency.
		if w.Deriv(a) >= w.Deriv(b) {
			return false
		}
		// Inverse round trips.
		if math.Abs(w.LatencyFor(sa)-a) > 1e-6*a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceValidate(t *testing.T) {
	ok := Resource{ID: "cpu-0", Kind: CPU, Availability: 1, LagMs: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid resource rejected: %v", err)
	}
	cases := []Resource{
		{ID: "", Kind: CPU, Availability: 1},
		{ID: "x", Kind: CPU, Availability: 0},
		{ID: "x", Kind: CPU, Availability: 1.5},
		{ID: "x", Kind: CPU, Availability: 1, LagMs: -1},
		{ID: "x", Kind: Kind(9), Availability: 1},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail validation", i, r)
		}
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || Link.String() != "link" {
		t.Errorf("Kind strings wrong: %v, %v", CPU, Link)
	}
	if Kind(3).String() != "Kind(3)" {
		t.Errorf("unknown kind string = %v", Kind(3))
	}
}
