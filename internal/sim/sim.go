package sim

import (
	"fmt"
	"math"
	"math/rand"

	"lla/internal/sched"
	"lla/internal/stats"
	"lla/internal/workload"
)

// SchedulerKind selects the resource servers' scheduling discipline.
type SchedulerKind int

const (
	// GPS is the idealized fluid proportional-share scheduler.
	GPS SchedulerKind = iota + 1
	// Quantum is the quantum-based weighted round-robin scheduler, which
	// exhibits realistic scheduling lag.
	Quantum
	// SFQ is the start-time fair queuing scheduler, the virtual-time family
	// the paper's prototype kernel scheduler belongs to.
	SFQ
)

// Config parametrizes a simulation.
type Config struct {
	// Seed drives all stochastic elements (arrival processes, execution
	// jitter) deterministically.
	Seed int64
	// Scheduler selects the resource discipline (default Quantum, the
	// realistic one).
	Scheduler SchedulerKind
	// QuantumMs is the base quantum for the Quantum scheduler (default 5).
	QuantumMs float64
	// ExecJitterFrac in [0,1) makes actual job demand uniform in
	// [(1-frac)·WCET, WCET]; zero means every job takes its WCET.
	ExecJitterFrac float64
	// NoBackgroundLoad disables the always-backlogged background flow that
	// models reserved capacity (1 - B_r), e.g. the prototype's Metronome GC
	// share. By default the reservation is simulated.
	NoBackgroundLoad bool
	// SampleCap bounds the latency reservoirs (default 8192).
	SampleCap int
}

func (c Config) withDefaults() Config {
	if c.Scheduler == 0 {
		c.Scheduler = Quantum
	}
	if c.QuantumMs == 0 {
		c.QuantumMs = 5
	}
	if c.SampleCap == 0 {
		c.SampleCap = 8192
	}
	return c
}

// backgroundFlow is the reserved flow id modelling (1 - B_r); subtask flows
// are numbered from 0.
const backgroundFlow = 1 << 20

// Sim simulates a workload under a given share assignment.
type Sim struct {
	w   *workload.Workload
	cfg Config
	clk Clock
	rng *rand.Rand

	servers []*server
	// resIdx maps resource ID to server index.
	resIdx map[string]int
	// flowOf[ti][si] is the flow id of the subtask on its server.
	flowOf [][]int
	// srvOf[ti][si] is the server index of the subtask.
	srvOf [][]int
	// shares[ti][si] is the currently enacted share.
	shares [][]float64

	sources []*Source

	subLat  [][]*stats.Reservoir
	taskLat []*stats.Reservoir

	// releasedSets / completedSets count job sets per task.
	releasedSets  []int
	completedSets []int
	// deadlineMisses counts job sets whose end-to-end latency exceeded the
	// task's critical time.
	deadlineMisses []int
}

// server wraps a scheduler with event re-arming bookkeeping and utilization
// accounting.
type server struct {
	s   sched.Scheduler
	gen int64
	// taskWorkMs accumulates completed task service demand (excluding the
	// background reservation); utilization = taskWorkMs / elapsed.
	taskWorkMs float64
	// statsSinceMs marks the start of the current accounting window.
	statsSinceMs float64
}

// New builds a simulator for the workload. Initial shares are a fair split
// of each resource's availability; call SetShare/SetShares to enact an
// optimizer's assignment.
func New(w *workload.Workload, cfg Config) (*Sim, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Sim{
		w:      w,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		resIdx: make(map[string]int, len(w.Resources)),
	}

	for ri, r := range w.Resources {
		var sc sched.Scheduler
		switch cfg.Scheduler {
		case GPS:
			sc = sched.NewGPS()
		case Quantum:
			sc = sched.NewQuantum(cfg.QuantumMs)
		case SFQ:
			sc = sched.NewSFQ(cfg.QuantumMs)
		default:
			return nil, fmt.Errorf("sim: unknown scheduler kind %d", int(cfg.Scheduler))
		}
		s.servers = append(s.servers, &server{s: sc})
		s.resIdx[r.ID] = ri
		if !cfg.NoBackgroundLoad && r.Availability < 1 {
			sc.SetWeight(0, backgroundFlow, 1-r.Availability)
			s.feedBackground(ri)
		}
	}

	counts := make([]int, len(w.Resources))
	for ti, t := range w.Tasks {
		flows := make([]int, len(t.Subtasks))
		srvs := make([]int, len(t.Subtasks))
		shr := make([]float64, len(t.Subtasks))
		lats := make([]*stats.Reservoir, len(t.Subtasks))
		for si, st := range t.Subtasks {
			ri := s.resIdx[st.Resource]
			flows[si] = counts[ri]
			counts[ri]++
			srvs[si] = ri
			lats[si] = stats.NewReservoir(cfg.SampleCap)
		}
		s.flowOf = append(s.flowOf, flows)
		s.srvOf = append(s.srvOf, srvs)
		s.shares = append(s.shares, shr)
		s.subLat = append(s.subLat, lats)
		s.taskLat = append(s.taskLat, stats.NewReservoir(cfg.SampleCap))
		s.releasedSets = append(s.releasedSets, 0)
		s.completedSets = append(s.completedSets, 0)
		s.deadlineMisses = append(s.deadlineMisses, 0)

		src, err := NewSource(t.Trigger, rand.New(rand.NewSource(cfg.Seed+int64(ti)+1)))
		if err != nil {
			return nil, fmt.Errorf("sim: task %s: %w", t.Name, err)
		}
		s.sources = append(s.sources, src)
	}

	// Fair-split initial shares.
	perRes := w.SubtasksOn()
	for ti, t := range w.Tasks {
		for si, st := range t.Subtasks {
			r, _ := w.ResourceByID(st.Resource)
			s.setShareIdx(ti, si, r.Availability/float64(len(perRes[st.Resource])))
		}
	}

	// Schedule the first release of every task at its first arrival.
	for ti := range w.Tasks {
		first := s.sources[ti].Next(0)
		taskIdx := ti
		s.clk.At(first, func() { s.releaseJobSet(taskIdx) })
	}
	return s, nil
}

// feedBackground keeps the background flow permanently backlogged with
// large jobs, soaking up the reserved (1-B) capacity.
func (s *Sim) feedBackground(ri int) {
	const chunkMs = 1000.0
	srv := s.servers[ri]
	srv.s.Enqueue(s.clk.NowMs(), &sched.Job{
		Flow:     backgroundFlow,
		DemandMs: chunkMs,
		Done: func(float64) {
			s.feedBackground(ri)
		},
	})
	s.armServer(ri)
}

// armServer (re)schedules the wake-up for a server's next internal event.
func (s *Sim) armServer(ri int) {
	srv := s.servers[ri]
	srv.gen++
	gen := srv.gen
	next := srv.s.NextEventMs()
	if math.IsInf(next, 1) {
		return
	}
	s.clk.At(next, func() {
		if s.servers[ri].gen != gen {
			return // stale wake-up: state changed since scheduling
		}
		srv.s.AdvanceTo(s.clk.NowMs())
		s.armServer(ri)
	})
}

// releaseJobSet dispatches one instance of the task's subtask graph and
// schedules the next triggering event.
func (s *Sim) releaseJobSet(ti int) {
	t := s.w.Tasks[ti]
	now := s.clk.NowMs()
	s.releasedSets[ti]++

	js := &jobSet{
		releaseMs: now,
		remaining: make([]int, len(t.Subtasks)),
	}
	for si := range t.Subtasks {
		js.remaining[si] = len(t.Predecessors(si))
		if len(t.Successors(si)) == 0 {
			js.leavesLeft++
		}
	}
	root, err := t.Root()
	if err == nil {
		s.releaseJob(ti, root, js)
	}

	next := s.sources[ti].Next(now)
	s.clk.At(next, func() { s.releaseJobSet(ti) })
}

// jobSet tracks one in-flight instance of a task.
type jobSet struct {
	releaseMs  float64
	remaining  []int
	leavesLeft int
}

// releaseJob submits one subtask job of a job set to its resource.
func (s *Sim) releaseJob(ti, si int, js *jobSet) {
	t := s.w.Tasks[ti]
	now := s.clk.NowMs()
	demand := t.Subtasks[si].ExecMs
	if s.cfg.ExecJitterFrac > 0 {
		demand *= 1 - s.cfg.ExecJitterFrac*s.rng.Float64()
	}
	ri := s.srvOf[ti][si]
	readyMs := now
	s.servers[ri].s.Enqueue(now, &sched.Job{
		Flow:     s.flowOf[ti][si],
		DemandMs: demand,
		Done: func(doneMs float64) {
			s.subLat[ti][si].Add(doneMs - readyMs)
			s.servers[ri].taskWorkMs += demand
			s.onJobDone(ti, si, js, doneMs)
		},
	})
	s.armServer(ri)
}

// onJobDone propagates precedence and accounts job-set completion.
func (s *Sim) onJobDone(ti, si int, js *jobSet, doneMs float64) {
	t := s.w.Tasks[ti]
	if len(t.Successors(si)) == 0 {
		js.leavesLeft--
		if js.leavesLeft == 0 {
			lat := doneMs - js.releaseMs
			s.taskLat[ti].Add(lat)
			s.completedSets[ti]++
			if lat > t.CriticalMs {
				s.deadlineMisses[ti]++
			}
		}
		return
	}
	for _, succ := range t.Successors(si) {
		js.remaining[succ]--
		if js.remaining[succ] == 0 {
			s.releaseJob(ti, succ, js)
		}
	}
}

// setShareIdx enacts a share by index.
func (s *Sim) setShareIdx(ti, si int, share float64) {
	s.shares[ti][si] = share
	ri := s.srvOf[ti][si]
	s.servers[ri].s.SetWeight(s.clk.NowMs(), s.flowOf[ti][si], share)
	s.armServer(ri)
}

// SetShare enacts a share assignment for the named subtask.
func (s *Sim) SetShare(taskName, subtaskName string, share float64) error {
	if share < 0 {
		return fmt.Errorf("sim: negative share %v", share)
	}
	for ti, t := range s.w.Tasks {
		if t.Name != taskName {
			continue
		}
		if si := t.SubtaskIndexByName(subtaskName); si >= 0 {
			s.setShareIdx(ti, si, share)
			return nil
		}
		return fmt.Errorf("sim: task %s has no subtask %q", taskName, subtaskName)
	}
	return fmt.Errorf("sim: unknown task %q", taskName)
}

// SetShares enacts a full assignment indexed like the workload.
func (s *Sim) SetShares(shares [][]float64) error {
	if len(shares) != len(s.w.Tasks) {
		return fmt.Errorf("sim: assignment covers %d tasks, want %d", len(shares), len(s.w.Tasks))
	}
	for ti, row := range shares {
		if len(row) != len(s.w.Tasks[ti].Subtasks) {
			return fmt.Errorf("sim: task %s assignment covers %d subtasks, want %d",
				s.w.Tasks[ti].Name, len(row), len(s.w.Tasks[ti].Subtasks))
		}
		for si, v := range row {
			if v < 0 {
				return fmt.Errorf("sim: negative share %v", v)
			}
			s.setShareIdx(ti, si, v)
		}
	}
	return nil
}

// Share returns the currently enacted share of a subtask.
func (s *Sim) Share(ti, si int) float64 { return s.shares[ti][si] }

// RunFor advances the simulation by durMs.
func (s *Sim) RunFor(durMs float64) {
	s.clk.RunUntil(s.clk.NowMs() + durMs)
}

// NowMs returns the simulation time.
func (s *Sim) NowMs() float64 { return s.clk.NowMs() }

// SubtaskLatency exposes the measured latency samples of subtask (ti, si):
// time from release (all predecessors done) to completion.
func (s *Sim) SubtaskLatency(ti, si int) *stats.Reservoir { return s.subLat[ti][si] }

// TaskLatency exposes the measured end-to-end job-set latencies of task ti.
func (s *Sim) TaskLatency(ti int) *stats.Reservoir { return s.taskLat[ti] }

// ResetStats clears all latency samples and utilization accounting (e.g.
// after a warm-up phase or a share change) without disturbing in-flight
// jobs.
func (s *Sim) ResetStats() {
	for ti := range s.subLat {
		for si := range s.subLat[ti] {
			s.subLat[ti][si].Reset()
		}
		s.taskLat[ti].Reset()
	}
	for _, srv := range s.servers {
		srv.taskWorkMs = 0
		srv.statsSinceMs = s.clk.NowMs()
	}
}

// Utilization returns the fraction of the named resource's capacity spent
// on task work (excluding any background reservation) since the last
// ResetStats. It returns false for an unknown resource or an empty window.
func (s *Sim) Utilization(resourceID string) (float64, bool) {
	ri, ok := s.resIdx[resourceID]
	if !ok {
		return 0, false
	}
	srv := s.servers[ri]
	elapsed := s.clk.NowMs() - srv.statsSinceMs
	if elapsed <= 0 {
		return 0, false
	}
	return srv.taskWorkMs / elapsed, true
}

// Counts returns (released, completed) job sets for task ti.
func (s *Sim) Counts(ti int) (released, completed int) {
	return s.releasedSets[ti], s.completedSets[ti]
}

// DeadlineMisses reports how many completed job sets of task ti exceeded
// the critical time (counted since construction; ResetStats does not clear
// it, matching the released/completed counters).
func (s *Sim) DeadlineMisses(ti int) int { return s.deadlineMisses[ti] }

// Backlog returns the queue length of subtask (ti, si) on its resource.
func (s *Sim) Backlog(ti, si int) int {
	return s.servers[s.srvOf[ti][si]].s.Backlog(s.flowOf[ti][si])
}
