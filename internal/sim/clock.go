// Package sim is a discrete-event simulator of a distributed soft real-time
// system: nodes and links are proportional-share-scheduled resources, tasks
// release job sets in response to triggering events, and job precedence
// follows each task's subtask graph. It is the reproduction's substitute
// for the paper's RTSJ/Metronome/IBM-RTLinux prototype testbed (Section 6):
// the optimizer's share assignments are enacted on the simulated schedulers
// and the resulting end-to-end latencies are measured, including the
// model-error effects (scheduling lag, release desynchronization) that drive
// the paper's online error correction.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	atMs float64
	seq  int64
	fn   func()
}

// eventHeap orders events by time, then insertion order (determinism).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atMs != h[j].atMs {
		return h[i].atMs < h[j].atMs
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Clock is the simulation clock and event queue.
type Clock struct {
	nowMs float64
	seq   int64
	queue eventHeap
}

// NowMs returns the current simulation time.
func (c *Clock) NowMs() float64 { return c.nowMs }

// At schedules fn at absolute time atMs (>= now).
func (c *Clock) At(atMs float64, fn func()) {
	if atMs < c.nowMs {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", atMs, c.nowMs))
	}
	c.seq++
	c.queue.pushEvent(event{atMs: atMs, seq: c.seq, fn: fn})
}

// After schedules fn delayMs from now.
func (c *Clock) After(delayMs float64, fn func()) {
	c.At(c.nowMs+delayMs, fn)
}

// RunUntil processes events up to and including untilMs, then sets the clock
// to untilMs.
func (c *Clock) RunUntil(untilMs float64) {
	for c.queue.Len() > 0 && c.queue.peek().atMs <= untilMs {
		e := c.queue.popEvent()
		c.nowMs = e.atMs
		e.fn()
	}
	if untilMs > c.nowMs {
		c.nowMs = untilMs
	}
}

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return c.queue.Len() }
