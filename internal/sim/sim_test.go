package sim

import (
	"math"
	"math/rand"
	"testing"

	"lla/internal/share"
	"lla/internal/task"
	"lla/internal/utility"
	"lla/internal/workload"
)

// singleSubtaskWorkload: one task, one subtask of WCET 2ms, one resource of
// availability B, periodic releases every periodMs.
func singleSubtaskWorkload(b float64, periodMs float64) *workload.Workload {
	t := task.NewBuilder("t", 1000).
		Trigger(task.Periodic(periodMs)).
		Subtask("s", "r0", 2).
		MustBuild()
	return &workload.Workload{
		Name:      "single",
		Tasks:     []*task.Task{t},
		Resources: []share.Resource{{ID: "r0", Kind: share.CPU, Availability: b, LagMs: 1}},
		Curves:    map[string]utility.Curve{"t": utility.NegLatency{}},
	}
}

func TestClockOrdering(t *testing.T) {
	var c Clock
	var got []int
	c.At(5, func() { got = append(got, 2) })
	c.At(3, func() { got = append(got, 1) })
	c.At(5, func() { got = append(got, 3) }) // same time: FIFO
	c.RunUntil(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("event order = %v", got)
	}
	if c.NowMs() != 10 {
		t.Errorf("NowMs = %v, want 10", c.NowMs())
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", c.Pending())
	}
}

func TestClockRejectsPastEvents(t *testing.T) {
	var c Clock
	c.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.At(5, func() {})
}

func TestSourcePeriodic(t *testing.T) {
	src, err := NewSource(task.Periodic(10), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Next(0); got != 10 {
		t.Errorf("Next(0) = %v, want 10", got)
	}
	if got := src.Next(10); got != 20 {
		t.Errorf("Next(10) = %v, want 20", got)
	}
}

func TestSourcePoissonRate(t *testing.T) {
	src, err := NewSource(task.Poisson(10), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	now, n := 0.0, 0
	for now < 100000 {
		now = src.Next(now)
		n++
	}
	// Mean inter-arrival 10ms -> ~10000 arrivals over 100s.
	if n < 9000 || n < 1 || n > 11000 {
		t.Errorf("poisson arrivals = %d, want ≈10000", n)
	}
}

func TestSourceBurstyThinsArrivals(t *testing.T) {
	burstRng := rand.New(rand.NewSource(3))
	src, err := NewSource(task.Bursty(10, 200, 600), burstRng)
	if err != nil {
		t.Fatal(err)
	}
	now, n := 0.0, 0
	for now < 100000 {
		now = src.Next(now)
		n++
	}
	// Duty cycle 25%: ≈2500 arrivals; allow generous slack for phase noise.
	if n < 1500 || n > 4000 {
		t.Errorf("bursty arrivals = %d, want ≈2500", n)
	}
}

func TestSourceRequiresTrigger(t *testing.T) {
	if _, err := NewSource(task.Trigger{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero trigger should fail")
	}
}

// With the resource fully available and the subtask alone, work conservation
// means every job runs at full rate: latency == WCET, regardless of share.
func TestSimWorkConservingIsolatedLatency(t *testing.T) {
	for _, kind := range []SchedulerKind{GPS, Quantum} {
		s, err := New(singleSubtaskWorkload(1, 10), Config{Scheduler: kind, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetShare("t", "s", 0.3); err != nil {
			t.Fatal(err)
		}
		s.RunFor(1000)
		lat := s.SubtaskLatency(0, 0)
		if lat.Count() < 90 {
			t.Fatalf("%v: only %d samples", kind, lat.Count())
		}
		if got := lat.Quantile(0.5); math.Abs(got-2) > 0.01 {
			t.Errorf("%v: isolated median latency = %v, want 2 (WCET)", kind, got)
		}
	}
}

// With a background reservation soaking (1-B), a GPS-scheduled subtask at
// share sigma and an always-busy background runs at rate sigma/(sigma+1-B):
// B=0.5, sigma=0.5 -> rate 0.5 -> latency = 4ms.
func TestSimBackgroundReservationThrottles(t *testing.T) {
	s, err := New(singleSubtaskWorkload(0.5, 20), Config{Scheduler: GPS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShare("t", "s", 0.5); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2000)
	lat := s.SubtaskLatency(0, 0)
	if got := lat.Quantile(0.5); math.Abs(got-4) > 0.05 {
		t.Errorf("median latency = %v, want 4 (rate 0.5)", got)
	}
	// NoBackgroundLoad disables the reservation.
	s2, err := New(singleSubtaskWorkload(0.5, 20), Config{Scheduler: GPS, Seed: 1, NoBackgroundLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.RunFor(2000)
	if got := s2.SubtaskLatency(0, 0).Quantile(0.5); math.Abs(got-2) > 0.05 {
		t.Errorf("median without background = %v, want 2", got)
	}
}

// End-to-end latency of a chain equals the sum of stage latencies; the task
// latency recorder must reflect precedence.
func TestSimChainPrecedence(t *testing.T) {
	tk := task.NewBuilder("chain", 1000).
		Trigger(task.Periodic(50)).
		Subtask("a", "r0", 3).
		Subtask("b", "r1", 5).
		Chain("a", "b").
		MustBuild()
	w := &workload.Workload{
		Name:  "chain",
		Tasks: []*task.Task{tk},
		Resources: []share.Resource{
			{ID: "r0", Kind: share.CPU, Availability: 1},
			{ID: "r1", Kind: share.Link, Availability: 1},
		},
		Curves: map[string]utility.Curve{"chain": utility.NegLatency{}},
	}
	s, err := New(w, Config{Scheduler: GPS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(5000)
	if got := s.TaskLatency(0).Quantile(0.5); math.Abs(got-8) > 0.05 {
		t.Errorf("chain latency = %v, want 8 (3+5, isolated)", got)
	}
	rel, comp := s.Counts(0)
	if rel < 99 || comp < rel-1 {
		t.Errorf("released=%d completed=%d, want stable pipeline", rel, comp)
	}
}

// A fan-out/fan-in diamond: the end-to-end latency is root + max(branches) +
// leaf when resources are independent.
func TestSimDiamondPrecedence(t *testing.T) {
	tk := task.NewBuilder("diamond", 1000).
		Trigger(task.Periodic(100)).
		Subtask("a", "r0", 2).
		Subtask("b", "r1", 3).
		Subtask("c", "r2", 9).
		Subtask("d", "r3", 1).
		Edge("a", "b").Edge("a", "c").Edge("b", "d").Edge("c", "d").
		MustBuild()
	var res []share.Resource
	for _, id := range []string{"r0", "r1", "r2", "r3"} {
		res = append(res, share.Resource{ID: id, Kind: share.CPU, Availability: 1})
	}
	w := &workload.Workload{
		Name:      "diamond",
		Tasks:     []*task.Task{tk},
		Resources: res,
		Curves:    map[string]utility.Curve{"diamond": utility.NegLatency{}},
	}
	s, err := New(w, Config{Scheduler: GPS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(5000)
	// 2 + max(3, 9) + 1 = 12.
	if got := s.TaskLatency(0).Quantile(0.5); math.Abs(got-12) > 0.05 {
		t.Errorf("diamond latency = %v, want 12", got)
	}
}

// The prototype premise (Section 6.3/6.4): under contention at the assigned
// shares, the measured latency is well below the model's (c+l)/share
// prediction — the gap the online error correction discovers.
func TestSimPrototypeModelOverPredicts(t *testing.T) {
	w := workload.Prototype()
	s, err := New(w, Config{Scheduler: Quantum, QuantumMs: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Enact the model-based optimum: fast 0.2857, slow 0.1643.
	fast, slow := 10.0/35, 0.45-10.0/35
	for ti, tk := range w.Tasks {
		v := fast
		if ti >= 2 {
			v = slow
		}
		for _, st := range tk.Subtasks {
			if err := s.SetShare(tk.Name, st.Name, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.RunFor(2000)
	s.ResetStats()
	s.RunFor(20000)

	modelFast := (workload.FastExecMs + workload.PrototypeLagMs) / fast // 35ms
	measured := s.SubtaskLatency(0, 0).Quantile(0.95)
	if measured >= modelFast*0.8 {
		t.Errorf("fast p95 = %.1f, model predicts %.1f; expected clear over-prediction", measured, modelFast)
	}
	if measured <= workload.FastExecMs {
		t.Errorf("fast p95 = %.1f below WCET %v — impossible", measured, workload.FastExecMs)
	}
	// The pipeline keeps up: completions track releases.
	rel, comp := s.Counts(0)
	if comp < rel-10 {
		t.Errorf("fast task falling behind: released=%d completed=%d", rel, comp)
	}
}

// Quantum scheduling shows more latency spread than GPS at equal shares.
func TestSimQuantumLagExceedsGPS(t *testing.T) {
	run := func(kind SchedulerKind) float64 {
		w := workload.Prototype()
		s, err := New(w, Config{Scheduler: kind, QuantumMs: 5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s.RunFor(10000)
		return s.SubtaskLatency(0, 0).Quantile(0.95)
	}
	gps, quantum := run(GPS), run(Quantum)
	if quantum <= gps {
		t.Errorf("quantum p95 %v should exceed GPS p95 %v", quantum, gps)
	}
}

// Starving a subtask (share far below its arrival demand) grows its backlog.
func TestSimOverloadGrowsBacklog(t *testing.T) {
	// WCET 2ms every 10ms needs share 0.2; give 0.05 against a saturating
	// background.
	s, err := New(singleSubtaskWorkload(0.1, 10), Config{Scheduler: GPS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShare("t", "s", 0.05); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5000)
	if got := s.Backlog(0, 0); got < 10 {
		t.Errorf("backlog = %d, want large (overload)", got)
	}
}

func TestSimSetSharesValidation(t *testing.T) {
	s, err := New(singleSubtaskWorkload(1, 10), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShares([][]float64{{0.5}}); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if s.Share(0, 0) != 0.5 {
		t.Errorf("Share = %v, want 0.5", s.Share(0, 0))
	}
	if err := s.SetShares([][]float64{}); err == nil {
		t.Error("wrong task count should fail")
	}
	if err := s.SetShares([][]float64{{0.5, 0.5}}); err == nil {
		t.Error("wrong subtask count should fail")
	}
	if err := s.SetShares([][]float64{{-1}}); err == nil {
		t.Error("negative share should fail")
	}
	if err := s.SetShare("zz", "s", 0.1); err == nil {
		t.Error("unknown task should fail")
	}
	if err := s.SetShare("t", "zz", 0.1); err == nil {
		t.Error("unknown subtask should fail")
	}
	if err := s.SetShare("t", "s", -0.1); err == nil {
		t.Error("negative share should fail")
	}
}

func TestSimResetStats(t *testing.T) {
	s, err := New(singleSubtaskWorkload(1, 10), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(500)
	if s.SubtaskLatency(0, 0).Count() == 0 {
		t.Fatal("no samples collected")
	}
	s.ResetStats()
	if s.SubtaskLatency(0, 0).Count() != 0 || s.TaskLatency(0).Count() != 0 {
		t.Error("ResetStats did not clear samples")
	}
}

func TestSimDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		s, err := New(workload.Prototype(), Config{Scheduler: Quantum, Seed: 9, ExecJitterFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		s.RunFor(5000)
		return s.TaskLatency(0).Quantile(0.9)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different results: %v vs %v", a, b)
	}
}

func TestSimExecJitterShortensJobs(t *testing.T) {
	s, err := New(singleSubtaskWorkload(1, 10), Config{Scheduler: GPS, Seed: 5, ExecJitterFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(2000)
	med := s.SubtaskLatency(0, 0).Quantile(0.5)
	if med >= 2 || med <= 1 {
		t.Errorf("median with 50%% jitter = %v, want in (1,2)", med)
	}
}

func TestSimRejectsInvalidWorkload(t *testing.T) {
	w := singleSubtaskWorkload(1, 10)
	w.Resources = nil
	if _, err := New(w, Config{}); err == nil {
		t.Error("invalid workload should fail")
	}
	w2 := singleSubtaskWorkload(1, 10)
	w2.Tasks[0].Trigger = task.Trigger{}
	if _, err := New(w2, Config{}); err == nil {
		t.Error("missing trigger should fail")
	}
	if _, err := New(singleSubtaskWorkload(1, 10), Config{Scheduler: SchedulerKind(9)}); err == nil {
		t.Error("unknown scheduler kind should fail")
	}
}

// SFQ is a valid resource discipline for the simulator with the same
// long-run proportional behaviour as the other schedulers.
func TestSimSFQScheduler(t *testing.T) {
	s, err := New(singleSubtaskWorkload(0.5, 20), Config{Scheduler: SFQ, QuantumMs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShare("t", "s", 0.5); err != nil {
		t.Fatal(err)
	}
	s.RunFor(4000)
	// Against the always-busy background at equal weight, the subtask runs
	// at rate ~0.5: median latency ≈ 4ms (2ms WCET), up to quantum effects.
	med := s.SubtaskLatency(0, 0).Quantile(0.5)
	if med < 2 || med > 7 {
		t.Errorf("SFQ median latency = %v, want ≈4 (rate 0.5 with quantum jitter)", med)
	}
	// Throughput keeps up.
	rel, comp := s.Counts(0)
	if comp < rel-2 {
		t.Errorf("released=%d completed=%d", rel, comp)
	}
}

// All three disciplines agree on long-run throughput for a saturated system.
func TestSimSchedulerDisciplinesAgreeOnThroughput(t *testing.T) {
	var counts []int
	for _, kind := range []SchedulerKind{GPS, Quantum, SFQ} {
		s, err := New(workload.Prototype(), Config{Scheduler: kind, QuantumMs: 5, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		s.RunFor(20000)
		_, comp := s.Counts(0)
		counts = append(counts, comp)
	}
	for i := 1; i < len(counts); i++ {
		if d := math.Abs(float64(counts[i]-counts[0])) / float64(counts[0]); d > 0.05 {
			t.Errorf("throughput disagreement: %v", counts)
		}
	}
}

// Section 6.2's utilization claim: the prototype workload's demand is 66% of
// each CPU (2×0.2 + 2×0.13 minimum shares), independent of the enacted
// shares, because proportional-share scheduling is work conserving.
func TestSimPrototypeUtilizationIs66Percent(t *testing.T) {
	s, err := New(workload.Prototype(), Config{Scheduler: Quantum, QuantumMs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(3000)
	s.ResetStats()
	s.RunFor(30000)
	for _, id := range []string{"cpu0", "cpu1", "cpu2"} {
		u, ok := s.Utilization(id)
		if !ok {
			t.Fatalf("no utilization for %s", id)
		}
		if math.Abs(u-0.66) > 0.02 {
			t.Errorf("%s utilization = %.3f, want ≈0.66 (paper Section 6.2)", id, u)
		}
	}
	if _, ok := s.Utilization("nope"); ok {
		t.Error("unknown resource should report false")
	}
}
