package sim

import (
	"fmt"
	"math/rand"

	"lla/internal/task"
)

// Source generates triggering-event arrival times for one task from its
// trigger specification (Section 2: periodic, Poisson, or bursty on/off).
type Source struct {
	trig task.Trigger
	rng  *rand.Rand
	// onEndMs is the end of the current on-phase (bursty only).
	onEndMs float64
}

// NewSource builds a deterministic (seeded) arrival generator.
func NewSource(trig task.Trigger, rng *rand.Rand) (*Source, error) {
	if err := trig.Validate(); err != nil {
		return nil, err
	}
	if trig.Kind == 0 {
		return nil, fmt.Errorf("sim: task has no trigger specification")
	}
	s := &Source{trig: trig, rng: rng}
	if trig.Kind == task.TriggerBursty {
		s.onEndMs = rng.ExpFloat64() * trig.OnMs
	}
	return s, nil
}

// Next returns the arrival time following nowMs.
func (s *Source) Next(nowMs float64) float64 {
	switch s.trig.Kind {
	case task.TriggerPeriodic:
		return nowMs + s.trig.PeriodMs
	case task.TriggerPoisson:
		return nowMs + s.rng.ExpFloat64()*s.trig.PeriodMs
	case task.TriggerBursty:
		t := nowMs + s.trig.PeriodMs
		if t <= s.onEndMs {
			return t
		}
		// The on-phase ended: insert an off gap, then start a new on-phase
		// whose first arrival opens it.
		start := s.onEndMs + s.rng.ExpFloat64()*s.trig.OffMs
		if start < t {
			start = t
		}
		s.onEndMs = start + s.rng.ExpFloat64()*s.trig.OnMs
		return start
	default:
		panic(fmt.Sprintf("sim: unsupported trigger kind %v", s.trig.Kind))
	}
}
