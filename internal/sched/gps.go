package sched

import "fmt"

// GPS is a fluid Generalized Processor Sharing scheduler: at every instant,
// the head job of each backlogged flow is served at rate
// weight_f / Σ_{backlogged g} weight_g (times the resource's unit capacity),
// and jobs within a flow are served FIFO. It is the idealized
// proportional-share discipline that real PS schedulers approximate.
type GPS struct {
	nowMs   float64
	weights map[int]float64
	queues  map[int][]*Job
	// backlogged caches Σ weights of flows with work, maintained
	// incrementally.
	weightSum float64
}

var _ Scheduler = (*GPS)(nil)

// NewGPS returns an empty fluid scheduler.
func NewGPS() *GPS {
	return &GPS{
		weights: make(map[int]float64),
		queues:  make(map[int][]*Job),
	}
}

// SetWeight implements Scheduler.
func (g *GPS) SetWeight(nowMs float64, flow int, weight float64) {
	if weight < 0 {
		panic(fmt.Sprintf("sched: negative weight %v", weight))
	}
	g.AdvanceTo(nowMs)
	if len(g.queues[flow]) > 0 {
		g.weightSum += weight - g.weights[flow]
	}
	g.weights[flow] = weight
}

// Enqueue implements Scheduler.
func (g *GPS) Enqueue(nowMs float64, job *Job) {
	g.AdvanceTo(nowMs)
	if len(g.queues[job.Flow]) == 0 {
		g.weightSum += g.weights[job.Flow]
	}
	g.queues[job.Flow] = append(g.queues[job.Flow], job)
}

// rate returns flow's current service rate.
func (g *GPS) rate(flow int) float64 {
	if g.weightSum <= 0 {
		// All backlogged flows have zero weight: serve them equally (a real
		// scheduler would not starve them completely).
		n := 0
		for f, q := range g.queues {
			if len(q) > 0 && g.weights[f] == 0 {
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return 1 / float64(n)
	}
	return g.weights[flow] / g.weightSum
}

// NextEventMs implements Scheduler.
func (g *GPS) NextEventMs() float64 {
	next := inf()
	for f, q := range g.queues {
		if len(q) == 0 {
			continue
		}
		r := g.rate(f)
		if r <= 0 {
			continue
		}
		if t := g.nowMs + q[0].DemandMs/r; t < next {
			next = t
		}
	}
	return next
}

// AdvanceTo implements Scheduler. Completions strictly before nowMs fire in
// chronological order; service between completions is fluid.
func (g *GPS) AdvanceTo(nowMs float64) {
	for g.nowMs < nowMs {
		next := g.NextEventMs()
		step := nowMs
		if next < step {
			step = next
		}
		dt := step - g.nowMs
		if dt > 0 {
			for f, q := range g.queues {
				if len(q) == 0 {
					continue
				}
				q[0].DemandMs -= dt * g.rate(f)
			}
		}
		g.nowMs = step
		// Complete all heads that reached zero (ties complete together).
		var done []*Job
		for f, q := range g.queues {
			for len(q) > 0 && q[0].DemandMs <= 1e-9 {
				done = append(done, q[0])
				q = q[1:]
			}
			g.queues[f] = q
			if len(q) == 0 {
				g.weightSum -= g.weights[f]
				if g.weightSum < 1e-12 {
					g.weightSum = 0
				}
				delete(g.queues, f)
			}
		}
		for _, j := range done {
			j.Done(g.nowMs)
		}
		if len(done) == 0 && step == nowMs {
			return
		}
	}
}

// Backlog implements Scheduler.
func (g *GPS) Backlog(flow int) int { return len(g.queues[flow]) }
