package sched

import (
	"math"
	"testing"
)

func TestSFQCompletesAllWork(t *testing.T) {
	q := NewSFQ(5)
	done := runSchedule(q, map[int]float64{0: 0.5, 1: 0.5},
		[]arrival{{0, 0, 10}, {0, 1, 10}}, 1000)
	if len(done) != 2 {
		t.Fatalf("not all jobs completed: %v", done)
	}
	last := math.Max(done[0], done[1])
	if math.Abs(last-20) > 1e-6 {
		t.Errorf("last completion = %v, want 20 (work conserving)", last)
	}
}

func TestSFQLongRunProportionality(t *testing.T) {
	q := NewSFQ(2)
	weights := map[int]float64{0: 0.25, 1: 0.75}
	var doneWork [2]float64
	for f := 0; f < 2; f++ {
		for j := 0; j < 400; j++ {
			flow := f
			q.SetWeight(0, flow, weights[flow])
			q.Enqueue(0, &Job{Flow: flow, DemandMs: 1, Done: func(float64) { doneWork[flow]++ }})
		}
	}
	q.AdvanceTo(400)
	ratio := doneWork[1] / (doneWork[0] + 1e-9)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("work ratio = %v (done %v), want ≈3", ratio, doneWork)
	}
}

func TestSFQWorkConservingWhenAlone(t *testing.T) {
	q := NewSFQ(5)
	done := runSchedule(q, map[int]float64{0: 0.1}, []arrival{{0, 0, 12}}, 1000)
	if math.Abs(done[0]-12) > 1e-6 {
		t.Errorf("completion = %v, want 12", done[0])
	}
}

// SFQ's virtual time prevents an idle flow from building up credit: a flow
// that wakes up late competes fairly from "now" rather than monopolizing
// the server to catch up.
func TestSFQNoIdleCredit(t *testing.T) {
	q := NewSFQ(1)
	q.SetWeight(0, 0, 0.5)
	q.SetWeight(0, 1, 0.5)
	// Flow 0 runs alone for 100ms.
	for i := 0; i < 100; i++ {
		q.Enqueue(0, &Job{Flow: 0, DemandMs: 1, Done: func(float64) {}})
	}
	q.AdvanceTo(100)
	// Now both flows offer work; over the next 40ms each should get ~half.
	var got [2]float64
	for i := 0; i < 40; i++ {
		for f := 0; f < 2; f++ {
			flow := f
			q.Enqueue(100, &Job{Flow: flow, DemandMs: 1, Done: func(float64) { got[flow]++ }})
		}
	}
	q.AdvanceTo(140)
	if math.Abs(got[0]-got[1]) > 4 {
		t.Errorf("post-idle split %v, want ≈ equal (no idle credit)", got)
	}
}

// SFQ's fairness bound: a newly backlogged flow with a pending start tag at
// the virtual time is served within one quantum per competing flow, so its
// waiting time is bounded by (#flows)·quantum regardless of how much work
// the competitors have queued.
func TestSFQNewcomerDelayBounded(t *testing.T) {
	const quantum = 10.0
	s := NewSFQ(quantum)
	s.SetWeight(0, 0, 0.5)
	s.SetWeight(0, 1, 0.4)
	s.SetWeight(0, 2, 0.1)
	// Competitors with effectively infinite backlogs.
	s.Enqueue(0, &Job{Flow: 0, DemandMs: 1000, Done: func(float64) {}})
	s.Enqueue(0, &Job{Flow: 1, DemandMs: 1000, Done: func(float64) {}})
	var doneAt float64
	s.AdvanceTo(3)
	s.Enqueue(3, &Job{Flow: 2, DemandMs: 0.5, Done: func(ts float64) { doneAt = ts }})
	s.AdvanceTo(500)
	wait := doneAt - 3
	if wait <= 0 {
		t.Fatal("newcomer never served")
	}
	if wait > 3*quantum {
		t.Errorf("newcomer waited %v ms, want <= %v (bounded by flows×quantum)", wait, 3*quantum)
	}
}

func TestSFQIdleAndValidation(t *testing.T) {
	q := NewSFQ(5)
	if !math.IsInf(q.NextEventMs(), 1) {
		t.Error("idle SFQ should report +Inf")
	}
	if q.Backlog(3) != 0 {
		t.Error("Backlog of unknown flow should be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on bad quantum")
			}
		}()
		NewSFQ(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative weight")
			}
		}()
		q.SetWeight(0, 0, -1)
	}()
}

// Extend the cross-scheduler conservation property to SFQ.
func TestSFQConservesWork(t *testing.T) {
	arrivals := []arrival{
		{0, 0, 3}, {1, 1, 2}, {2, 2, 4}, {5, 0, 1}, {7, 3, 2.5}, {9, 1, 1.5},
	}
	weights := map[int]float64{0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4}
	done := runSchedule(NewSFQ(2), weights, arrivals, 100)
	if len(done) != len(arrivals) {
		t.Fatalf("%d of %d jobs completed", len(done), len(arrivals))
	}
	// Total work 14ms arriving by t=9: all must finish by 9+14.
	for i, ts := range done {
		if ts > 23+1e-9 {
			t.Errorf("job %d completed at %v, want <= 23", i, ts)
		}
	}
}
