// Package sched implements the proportional-share schedulers that the
// simulator uses as resource servers — the reproduction's substitute for the
// paper's modified Surplus Fair-Share kernel scheduler (Section 6.1).
//
// Two schedulers are provided: a fluid Generalized Processor Sharing (GPS)
// scheduler, which serves every backlogged flow simultaneously at a rate
// proportional to its weight, and a quantum-based weighted round-robin
// scheduler, which serves one flow at a time in weighted time slices and so
// exhibits the scheduling lag and release-desynchronization effects that the
// paper's online model error correction (Section 6.3) must absorb.
//
// Both schedulers are event-driven and work-conserving: idle flows' capacity
// is redistributed to backlogged flows.
package sched

import "math"

// Job is a unit of work submitted to a scheduler.
type Job struct {
	// Flow identifies the proportional-share flow (one per subtask hosted
	// on the resource).
	Flow int
	// DemandMs is the remaining service demand in milliseconds of dedicated
	// resource time.
	DemandMs float64
	// Done is invoked exactly once, when the job completes, with the
	// completion timestamp.
	Done func(nowMs float64)
}

// Scheduler is an event-driven proportional-share resource server. The
// simulation engine drives it with a monotone clock: Enqueue and SetWeight
// mutate state at the current time, NextEventMs exposes the earliest
// internal completion, and AdvanceTo moves the clock forward, firing Done
// callbacks for all jobs completing on the way.
type Scheduler interface {
	// SetWeight assigns flow's proportional-share weight (its resource
	// share). The scheduler must already be advanced to nowMs.
	SetWeight(nowMs float64, flow int, weight float64)
	// Enqueue submits a job at nowMs.
	Enqueue(nowMs float64, job *Job)
	// NextEventMs returns the absolute time of the next job completion, or
	// +Inf when idle.
	NextEventMs() float64
	// AdvanceTo moves the internal clock to nowMs (>= the current time),
	// completing jobs along the way.
	AdvanceTo(nowMs float64)
	// Backlog returns the number of queued-or-running jobs of the flow.
	Backlog(flow int) int
}

// inf is the idle sentinel.
func inf() float64 { return math.Inf(1) }
