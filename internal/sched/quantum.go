package sched

import (
	"fmt"
	"sort"
)

// Quantum is a quantum-based weighted round-robin scheduler: it serves one
// backlogged flow at a time for a time slice proportional to the flow's
// weight, then rotates. Long-run service is proportional-share like GPS,
// but short-term service is bursty: a job arriving while other flows hold
// the server waits for their slices — the scheduling lag that the paper's
// share model charges as l_r, and whose residual mismatch the online error
// correction absorbs.
type Quantum struct {
	nowMs     float64
	quantumMs float64
	weights   map[int]float64
	queues    map[int][]*Job
	// order is the deterministic rotation order (flows in first-seen order,
	// kept sorted for reproducibility).
	order  []int
	cursor int
	// serving is the flow currently holding the server (-1 when none);
	// sliceLeft is its remaining slice.
	serving   int
	sliceLeft float64
}

var _ Scheduler = (*Quantum)(nil)

// NewQuantum returns a weighted round-robin scheduler with the given base
// quantum: a flow of weight w is served in slices of w*quantumMs.
func NewQuantum(quantumMs float64) *Quantum {
	if quantumMs <= 0 {
		panic(fmt.Sprintf("sched: quantum must be positive, got %v", quantumMs))
	}
	return &Quantum{
		quantumMs: quantumMs,
		weights:   make(map[int]float64),
		queues:    make(map[int][]*Job),
		serving:   -1,
	}
}

// SetWeight implements Scheduler.
func (q *Quantum) SetWeight(nowMs float64, flow int, weight float64) {
	if weight < 0 {
		panic(fmt.Sprintf("sched: negative weight %v", weight))
	}
	q.AdvanceTo(nowMs)
	if _, seen := q.weights[flow]; !seen {
		q.order = append(q.order, flow)
		sort.Ints(q.order)
	}
	q.weights[flow] = weight
}

// Enqueue implements Scheduler.
func (q *Quantum) Enqueue(nowMs float64, job *Job) {
	q.AdvanceTo(nowMs)
	if _, seen := q.weights[job.Flow]; !seen {
		q.weights[job.Flow] = 0
		q.order = append(q.order, job.Flow)
		sort.Ints(q.order)
	}
	q.queues[job.Flow] = append(q.queues[job.Flow], job)
	q.ensureServing()
}

// ensureServing maintains the invariant that a slice is active whenever work
// is queued, so NextEventMs always reports a strictly future event (event
// loops would otherwise spin on a wakeup at the current instant).
func (q *Quantum) ensureServing() {
	if q.serving == -1 {
		q.pickNext()
	}
}

// sliceFor returns the slice duration for a flow; zero-weight flows get a
// small slice so they are not starved (work conservation).
func (q *Quantum) sliceFor(flow int) float64 {
	w := q.weights[flow]
	if w < 0.001 {
		w = 0.001
	}
	return w * q.quantumMs
}

// pickNext selects the next backlogged flow in rotation order and charges it
// a fresh slice. It returns false when every queue is empty.
func (q *Quantum) pickNext() bool {
	n := len(q.order)
	for i := 0; i < n; i++ {
		f := q.order[(q.cursor+i)%n]
		if len(q.queues[f]) > 0 {
			q.cursor = (q.cursor + i + 1) % n
			q.serving = f
			q.sliceLeft = q.sliceFor(f)
			return true
		}
	}
	q.serving = -1
	return false
}

// NextEventMs implements Scheduler. It returns the next time the internal
// state changes (a completion or a slice rotation); the caller re-arms after
// advancing, so rotation-only wakeups are harmless.
func (q *Quantum) NextEventMs() float64 {
	if q.serving == -1 {
		return inf() // ensureServing keeps a slice active whenever backlogged
	}
	head := q.queues[q.serving][0]
	step := head.DemandMs
	if q.sliceLeft < step {
		step = q.sliceLeft
	}
	return q.nowMs + step
}

// AdvanceTo implements Scheduler.
func (q *Quantum) AdvanceTo(nowMs float64) {
	for q.nowMs < nowMs {
		if q.serving == -1 && !q.pickNext() {
			q.nowMs = nowMs
			return
		}
		head := q.queues[q.serving][0]
		step := nowMs - q.nowMs
		if head.DemandMs < step {
			step = head.DemandMs
		}
		if q.sliceLeft < step {
			step = q.sliceLeft
		}
		head.DemandMs -= step
		q.sliceLeft -= step
		q.nowMs += step
		if head.DemandMs <= 1e-9 {
			q.queues[q.serving] = q.queues[q.serving][1:]
			if len(q.queues[q.serving]) == 0 {
				delete(q.queues, q.serving)
				q.serving = -1
			}
			head.Done(q.nowMs)
		}
		if q.sliceLeft <= 1e-9 {
			q.serving = -1
		}
	}
	q.ensureServing()
}

// Backlog implements Scheduler.
func (q *Quantum) Backlog(flow int) int { return len(q.queues[flow]) }
