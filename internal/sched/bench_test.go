package sched

import "testing"

// benchScheduler measures jobs/second through a saturated 4-flow scheduler.
func benchScheduler(b *testing.B, mk func() Scheduler) {
	s := mk()
	weights := []float64{0.1, 0.2, 0.3, 0.4}
	for f, w := range weights {
		s.SetWeight(0, f, w)
	}
	done := 0
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(now, &Job{Flow: i % 4, DemandMs: 0.25, Done: func(float64) { done++ }})
		now += 0.25 // arrival rate equals capacity: stays busy, bounded queue
		s.AdvanceTo(now)
	}
	if done == 0 && b.N > 8 {
		b.Fatal("no completions")
	}
}

func BenchmarkGPS(b *testing.B)     { benchScheduler(b, func() Scheduler { return NewGPS() }) }
func BenchmarkQuantum(b *testing.B) { benchScheduler(b, func() Scheduler { return NewQuantum(1) }) }
func BenchmarkSFQ(b *testing.B)     { benchScheduler(b, func() Scheduler { return NewSFQ(1) }) }
