package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// collect runs the scheduler with the given jobs (flow, demand, arrival) and
// returns completion times keyed by job index.
type arrival struct {
	atMs     float64
	flow     int
	demandMs float64
}

func runSchedule(s Scheduler, weights map[int]float64, arrivals []arrival, untilMs float64) map[int]float64 {
	for f, w := range weights {
		s.SetWeight(0, f, w)
	}
	done := make(map[int]float64)
	sorted := append([]arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].atMs < sorted[j].atMs })
	for i, a := range sorted {
		idx := i
		s.AdvanceTo(a.atMs)
		s.Enqueue(a.atMs, &Job{Flow: a.flow, DemandMs: a.demandMs, Done: func(t float64) { done[idx] = t }})
	}
	s.AdvanceTo(untilMs)
	return done
}

func TestGPSSingleJobFullRate(t *testing.T) {
	g := NewGPS()
	done := runSchedule(g, map[int]float64{0: 0.5}, []arrival{{0, 0, 10}}, 100)
	// Work conservation: the only backlogged flow gets the full resource.
	if math.Abs(done[0]-10) > 1e-9 {
		t.Errorf("completion = %v, want 10 (work conserving)", done[0])
	}
}

func TestGPSProportionalSharing(t *testing.T) {
	g := NewGPS()
	// Two flows, weights 1:3, simultaneous 10ms demands.
	done := runSchedule(g, map[int]float64{0: 0.25, 1: 0.75},
		[]arrival{{0, 0, 10}, {0, 1, 10}}, 1000)
	// Flow 1 at rate 0.75 finishes at 13.33; then flow 0 runs alone:
	// by 13.33 flow 0 has done 13.33*0.25 = 3.33, remaining 6.67 at rate 1
	// -> completes at 20.
	if math.Abs(done[1]-40.0/3) > 1e-6 {
		t.Errorf("flow1 completion = %v, want 13.333", done[1])
	}
	if math.Abs(done[0]-20) > 1e-6 {
		t.Errorf("flow0 completion = %v, want 20", done[0])
	}
}

func TestGPSFIFOWithinFlow(t *testing.T) {
	g := NewGPS()
	done := runSchedule(g, map[int]float64{0: 1},
		[]arrival{{0, 0, 5}, {1, 0, 5}}, 100)
	if !(done[0] < done[1]) {
		t.Errorf("FIFO violated: %v >= %v", done[0], done[1])
	}
	if math.Abs(done[1]-10) > 1e-9 {
		t.Errorf("second job completion = %v, want 10", done[1])
	}
}

func TestGPSLateArrivalResharing(t *testing.T) {
	g := NewGPS()
	// Flow 0 alone until t=5, then flow 1 (equal weight) joins.
	done := runSchedule(g, map[int]float64{0: 0.5, 1: 0.5},
		[]arrival{{0, 0, 10}, {5, 1, 10}}, 1000)
	// Flow 0: 5ms at rate 1, then 5 remaining at rate 0.5 -> t=15.
	if math.Abs(done[0]-15) > 1e-6 {
		t.Errorf("flow0 completion = %v, want 15", done[0])
	}
	// Flow 1: from t=5 at rate .5 until t=15, 5 done; then alone -> t=20.
	if math.Abs(done[1]-20) > 1e-6 {
		t.Errorf("flow1 completion = %v, want 20", done[1])
	}
}

func TestGPSSetWeightMidRun(t *testing.T) {
	g := NewGPS()
	g.SetWeight(0, 0, 0.5)
	g.SetWeight(0, 1, 0.5)
	var doneAt float64
	g.Enqueue(0, &Job{Flow: 0, DemandMs: 10, Done: func(ts float64) { doneAt = ts }})
	g.Enqueue(0, &Job{Flow: 1, DemandMs: 100, Done: func(float64) {}})
	g.AdvanceTo(10) // flow 0 has 5 done
	g.SetWeight(10, 0, 0.9)
	g.SetWeight(10, 1, 0.1)
	g.AdvanceTo(100)
	// Remaining 5 at rate 0.9 -> completes at 10 + 5/0.9 = 15.56.
	if math.Abs(doneAt-(10+5/0.9)) > 1e-6 {
		t.Errorf("completion = %v, want %v", doneAt, 10+5/0.9)
	}
}

func TestGPSZeroWeightFlowsShareEqually(t *testing.T) {
	g := NewGPS()
	done := runSchedule(g, map[int]float64{0: 0, 1: 0},
		[]arrival{{0, 0, 5}, {0, 1, 5}}, 1000)
	if len(done) != 2 {
		t.Fatalf("zero-weight flows starved: %v", done)
	}
	if math.Abs(done[0]-10) > 1e-6 || math.Abs(done[1]-10) > 1e-6 {
		t.Errorf("equal sharing expected, got %v", done)
	}
}

func TestGPSIdleReturnsInf(t *testing.T) {
	g := NewGPS()
	if !math.IsInf(g.NextEventMs(), 1) {
		t.Error("idle scheduler should report +Inf")
	}
	g.AdvanceTo(50)
	if g.Backlog(0) != 0 {
		t.Error("Backlog of empty flow should be 0")
	}
}

func TestQuantumCompletesAllWork(t *testing.T) {
	q := NewQuantum(5)
	done := runSchedule(q, map[int]float64{0: 0.5, 1: 0.5},
		[]arrival{{0, 0, 10}, {0, 1, 10}}, 1000)
	if len(done) != 2 {
		t.Fatalf("not all jobs completed: %v", done)
	}
	// Total demand 20ms on a unit resource: last completion at 20.
	last := math.Max(done[0], done[1])
	if math.Abs(last-20) > 1e-6 {
		t.Errorf("last completion = %v, want 20 (work conserving)", last)
	}
}

func TestQuantumLongRunProportionality(t *testing.T) {
	q := NewQuantum(2)
	// Saturate both flows with many jobs; measure completed work ratio.
	weights := map[int]float64{0: 0.25, 1: 0.75}
	var doneWork [2]float64
	for f := 0; f < 2; f++ {
		for j := 0; j < 400; j++ {
			flow := f
			q.SetWeight(0, flow, weights[flow])
			q.Enqueue(0, &Job{Flow: flow, DemandMs: 1, Done: func(float64) { doneWork[flow]++ }})
		}
	}
	q.AdvanceTo(400) // half the total demand
	ratio := doneWork[1] / (doneWork[0] + 1e-9)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("work ratio = %v (done %v), want ≈3", ratio, doneWork)
	}
}

func TestQuantumLagVersusGPS(t *testing.T) {
	// A job arriving while another flow holds the server observes lag under
	// quantum scheduling but not under GPS.
	mk := func(s Scheduler) float64 {
		s.SetWeight(0, 0, 0.5)
		s.SetWeight(0, 1, 0.5)
		s.Enqueue(0, &Job{Flow: 0, DemandMs: 50, Done: func(float64) {}})
		var doneAt float64
		s.AdvanceTo(1) // flow 0 slice in progress
		s.Enqueue(1, &Job{Flow: 1, DemandMs: 0.5, Done: func(ts float64) { doneAt = ts }})
		s.AdvanceTo(100)
		return doneAt - 1
	}
	gpsLat := mk(NewGPS())
	quantumLat := mk(NewQuantum(10))
	if quantumLat <= gpsLat {
		t.Errorf("quantum latency %v should exceed GPS latency %v (scheduling lag)", quantumLat, gpsLat)
	}
}

func TestQuantumWorkConservingWhenOneFlowIdle(t *testing.T) {
	q := NewQuantum(5)
	done := runSchedule(q, map[int]float64{0: 0.1, 1: 0.9},
		[]arrival{{0, 0, 10}}, 1000)
	// Only flow 0 backlogged: it gets the full resource despite weight 0.1.
	if math.Abs(done[0]-10) > 1e-6 {
		t.Errorf("completion = %v, want 10", done[0])
	}
}

func TestQuantumIdleAndUnknownFlow(t *testing.T) {
	q := NewQuantum(5)
	if !math.IsInf(q.NextEventMs(), 1) {
		t.Error("idle quantum scheduler should report +Inf")
	}
	// Enqueue on a flow with no weight set: defaults to zero weight but is
	// still served (work conservation).
	var doneAt float64
	q.Enqueue(0, &Job{Flow: 7, DemandMs: 2, Done: func(ts float64) { doneAt = ts }})
	q.AdvanceTo(100)
	if math.Abs(doneAt-2) > 1e-6 {
		t.Errorf("completion = %v, want 2", doneAt)
	}
}

func TestQuantumPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantum(0)
}

func TestSchedulersPanicOnNegativeWeight(t *testing.T) {
	for _, s := range []Scheduler{NewGPS(), NewQuantum(5)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: expected panic on negative weight", s)
				}
			}()
			s.SetWeight(0, 0, -1)
		}()
	}
}

// Property: under both schedulers, total completed work never exceeds
// elapsed time (capacity 1) and all jobs complete when given enough time.
func TestSchedulersConserveWork(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var schedulers []Scheduler
		schedulers = append(schedulers, NewGPS(), NewQuantum(1+rng.Float64()*10))
		nJobs := 5 + rng.Intn(20)
		var arrivals []arrival
		total := 0.0
		lastArrival := 0.0
		for j := 0; j < nJobs; j++ {
			a := arrival{
				atMs:     rng.Float64() * 50,
				flow:     rng.Intn(4),
				demandMs: 0.5 + rng.Float64()*5,
			}
			total += a.demandMs
			if a.atMs > lastArrival {
				lastArrival = a.atMs
			}
			arrivals = append(arrivals, a)
		}
		weights := map[int]float64{0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4}
		horizon := lastArrival + total + 10
		for _, s := range schedulers {
			done := runSchedule(s, weights, arrivals, horizon)
			if len(done) != nJobs {
				t.Fatalf("trial %d %T: %d of %d jobs completed", trial, s, len(done), nJobs)
			}
			for _, ts := range done {
				if ts > horizon+1e-6 {
					t.Fatalf("trial %d %T: completion %v beyond horizon", trial, s, ts)
				}
			}
		}
	}
}
