package sched

import (
	"fmt"
	"math"
)

// SFQ is a Start-time Fair Queuing scheduler (Goyal et al.), the
// virtual-time discipline family that the paper's prototype kernel
// scheduler (a modified Surplus Fair-Share scheduler, itself an SFQ
// descendant) belongs to. Work is served in quanta; each quantum of flow f
// gets a start tag S = max(v, F_f) and finish tag F_f = S + len/w_f, the
// quantum with the minimum start tag is served next, and the virtual time v
// follows the start tag in service. Compared to weighted round-robin, SFQ
// bounds short-term unfairness by the quantum size rather than the full
// rotation, so newly backlogged flows wait less.
type SFQ struct {
	nowMs     float64
	quantumMs float64
	weights   map[int]float64
	queues    map[int][]*Job
	// finish[f] is flow f's last assigned finish tag.
	finish map[int]float64
	// vtime is the virtual time (start tag of the slice in service).
	vtime float64
	// serving is the flow holding the server (-1 when none); sliceLeft its
	// remaining slice in real ms.
	serving   int
	sliceLeft float64
}

var _ Scheduler = (*SFQ)(nil)

// NewSFQ returns a start-time fair queuing scheduler with the given quantum.
func NewSFQ(quantumMs float64) *SFQ {
	if quantumMs <= 0 {
		panic(fmt.Sprintf("sched: quantum must be positive, got %v", quantumMs))
	}
	return &SFQ{
		quantumMs: quantumMs,
		weights:   make(map[int]float64),
		queues:    make(map[int][]*Job),
		finish:    make(map[int]float64),
		serving:   -1,
	}
}

// SetWeight implements Scheduler.
func (s *SFQ) SetWeight(nowMs float64, flow int, weight float64) {
	if weight < 0 {
		panic(fmt.Sprintf("sched: negative weight %v", weight))
	}
	s.AdvanceTo(nowMs)
	s.weights[flow] = weight
}

// Enqueue implements Scheduler.
func (s *SFQ) Enqueue(nowMs float64, job *Job) {
	s.AdvanceTo(nowMs)
	s.queues[job.Flow] = append(s.queues[job.Flow], job)
	s.ensureServing()
}

// effWeight floors zero weights so no flow starves (work conservation).
func (s *SFQ) effWeight(flow int) float64 {
	w := s.weights[flow]
	if w < 0.001 {
		w = 0.001
	}
	return w
}

// pickNext selects the backlogged flow with the minimum start tag, charges
// it a slice and advances the virtual time.
func (s *SFQ) pickNext() bool {
	best, bestStart := -1, math.Inf(1)
	for f, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		start := s.finish[f]
		if s.vtime > start {
			start = s.vtime
		}
		if start < bestStart || (start == bestStart && f < best) {
			best, bestStart = f, start
		}
	}
	if best < 0 {
		s.serving = -1
		return false
	}
	slice := s.quantumMs
	if head := s.queues[best][0]; head.DemandMs < slice {
		slice = head.DemandMs
	}
	s.serving = best
	s.sliceLeft = slice
	s.vtime = bestStart
	s.finish[best] = bestStart + slice/s.effWeight(best)
	return true
}

// ensureServing keeps a slice active whenever work is queued.
func (s *SFQ) ensureServing() {
	if s.serving == -1 {
		s.pickNext()
	}
}

// NextEventMs implements Scheduler.
func (s *SFQ) NextEventMs() float64 {
	if s.serving == -1 {
		return inf()
	}
	head := s.queues[s.serving][0]
	step := head.DemandMs
	if s.sliceLeft < step {
		step = s.sliceLeft
	}
	return s.nowMs + step
}

// AdvanceTo implements Scheduler.
func (s *SFQ) AdvanceTo(nowMs float64) {
	for s.nowMs < nowMs {
		if s.serving == -1 && !s.pickNext() {
			s.nowMs = nowMs
			return
		}
		head := s.queues[s.serving][0]
		step := nowMs - s.nowMs
		if head.DemandMs < step {
			step = head.DemandMs
		}
		if s.sliceLeft < step {
			step = s.sliceLeft
		}
		head.DemandMs -= step
		s.sliceLeft -= step
		s.nowMs += step
		if head.DemandMs <= 1e-9 {
			s.queues[s.serving] = s.queues[s.serving][1:]
			if len(s.queues[s.serving]) == 0 {
				delete(s.queues, s.serving)
				s.serving = -1
			}
			head.Done(s.nowMs)
		}
		if s.sliceLeft <= 1e-9 {
			s.serving = -1
		}
	}
	s.ensureServing()
}

// Backlog implements Scheduler.
func (s *SFQ) Backlog(flow int) int { return len(s.queues[flow]) }
