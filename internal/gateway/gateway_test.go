package gateway

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lla/internal/obs"
)

// record pushes one iteration through the Recorder interface the way an
// engine does: fill the scratch sample Begin hands out, then Commit it.
func record(g *Gateway, iter int, mu []float64) {
	s := g.Begin(iter)
	s.Iteration = iter
	s.Utility = float64(iter) * 0.5
	s.KKTMax = 1.0 / float64(iter+1)
	s.Mu = append(s.Mu[:0], mu...)
	s.ShareSums = append(s.ShareSums[:0], mu...)
	s.Avail = append(s.Avail[:0], 10, 10, 10)
	g.Commit(s)
}

func drain(t *testing.T, sub *subscriber) sseEvent {
	t.Helper()
	select {
	case ev := <-sub.ch:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no event queued")
		return sseEvent{}
	}
}

func TestKeyframeThenDeltas(t *testing.T) {
	g := New(Config{KeyframeEvery: 4}, nil)
	sub := g.subscribe()
	defer g.unsubscribe(sub)

	record(g, 0, []float64{1, 2, 3})
	ev := drain(t, sub)
	if ev.name != "keyframe" {
		t.Fatalf("first event %q, want keyframe", ev.name)
	}
	var kf Keyframe
	if err := json.Unmarshal(ev.data, &kf); err != nil {
		t.Fatal(err)
	}
	if kf.Seq != 1 || kf.Iteration != 0 || len(kf.Mu) != 3 {
		t.Fatalf("keyframe %+v", kf)
	}

	// Only mu[1] changes: the delta must carry exactly that index.
	record(g, 1, []float64{1, 9, 3})
	ev = drain(t, sub)
	if ev.name != "delta" {
		t.Fatalf("second event %q, want delta", ev.name)
	}
	var d Delta
	if err := json.Unmarshal(ev.data, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.MuIdx) != 1 || d.MuIdx[0] != 1 || d.MuVal[0] != 9 {
		t.Fatalf("delta mu changes %v/%v, want [1]/[9]", d.MuIdx, d.MuVal)
	}
	if len(d.AvailIdx) != 0 {
		t.Fatalf("unchanged avail produced delta entries %v", d.AvailIdx)
	}

	// KeyframeEvery=4: events 3..5 are deltas, event 6 is a keyframe again.
	names := []string{}
	for i := 2; i <= 5; i++ {
		record(g, i, []float64{1, 9, float64(i)})
		names = append(names, drain(t, sub).name)
	}
	want := []string{"delta", "delta", "delta", "keyframe"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence %v, want %v", names, want)
	}
}

// TestLateSubscriberSeededWithKeyframe: connecting after the run started
// still yields the current state immediately.
func TestLateSubscriberSeededWithKeyframe(t *testing.T) {
	g := New(Config{}, nil)
	record(g, 0, []float64{1})
	record(g, 1, []float64{2})
	sub := g.subscribe()
	defer g.unsubscribe(sub)
	ev := drain(t, sub)
	if ev.name != "keyframe" {
		t.Fatalf("seed event %q, want keyframe", ev.name)
	}
	var kf Keyframe
	if err := json.Unmarshal(ev.data, &kf); err != nil {
		t.Fatal(err)
	}
	if kf.Iteration != 1 || kf.Mu[0] != 2 {
		t.Fatalf("seed keyframe %+v, want the latest state", kf)
	}
}

// TestSlowConsumerDropsThenResyncs: a queue of 1 overflows, the subscriber
// is marked lost, and the next broadcast repairs it with a fresh keyframe
// rather than a delta against state it never saw.
func TestSlowConsumerDropsThenResyncs(t *testing.T) {
	reg := obs.NewRegistry()
	g := New(Config{QueueLen: 1, KeyframeEvery: 1000}, reg)
	sub := g.subscribe()
	defer g.unsubscribe(sub)

	record(g, 0, []float64{1}) // fills the queue (keyframe)
	record(g, 1, []float64{2}) // overflows: dropped, sub marked lost
	record(g, 2, []float64{3}) // resync attempt, but the queue is still full

	if got := reg.Counter("lla_gateway_dropped_events_total", "").Value(); got == 0 {
		t.Fatal("overflow recorded no drop")
	}
	ev := drain(t, sub) // consume the seq-1 keyframe, freeing the queue
	if ev.name != "keyframe" {
		t.Fatalf("first event %q", ev.name)
	}

	record(g, 3, []float64{4}) // resync now fits
	ev = drain(t, sub)
	if ev.name != "keyframe" {
		t.Fatalf("resync event %q, want keyframe (got a delta against unseen state)", ev.name)
	}
	var kf Keyframe
	if err := json.Unmarshal(ev.data, &kf); err != nil {
		t.Fatal(err)
	}
	if kf.Mu[0] != 4 {
		t.Fatalf("resync keyframe mu %v, want the post-gap state 4", kf.Mu)
	}
	if got := reg.Counter("lla_gateway_resyncs_total", "").Value(); got != 1 {
		t.Fatalf("resyncs = %d, want 1", got)
	}

	// Back in sync: the next commit is an ordinary delta again.
	record(g, 4, []float64{5})
	if ev := drain(t, sub); ev.name != "delta" {
		t.Fatalf("post-resync event %q, want delta", ev.name)
	}
}

func TestTraceEventsBroadcast(t *testing.T) {
	g := New(Config{}, nil)
	sub := g.subscribe()
	defer g.unsubscribe(sub)
	g.Emit(obs.Event{Kind: "admission", Task: "alpha", Value: 1})
	ev := drain(t, sub)
	if ev.name != "trace" {
		t.Fatalf("event %q, want trace", ev.name)
	}
	var e obs.Event
	if err := json.Unmarshal(ev.data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "admission" || e.Task != "alpha" {
		t.Fatalf("trace payload %+v", e)
	}
}

func TestStateEndpoint(t *testing.T) {
	g := New(Config{}, nil)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty gateway /state = %d, want 404", resp.StatusCode)
	}

	record(g, 3, []float64{7})
	resp, err = http.Get(srv.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kf Keyframe
	if err := json.NewDecoder(resp.Body).Decode(&kf); err != nil {
		t.Fatal(err)
	}
	if kf.Iteration != 3 || kf.Mu[0] != 7 {
		t.Fatalf("/state keyframe %+v", kf)
	}
}

// TestStreamEndpoint drives a real SSE connection end to end.
func TestStreamEndpoint(t *testing.T) {
	g := New(Config{}, nil)
	record(g, 0, []float64{1, 2})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	type line struct {
		s   string
		err error
	}
	lines := make(chan line)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- line{s: sc.Text()}
		}
		lines <- line{err: sc.Err()}
	}()
	readLine := func() string {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatal(l.err)
			}
			return l.s
		case <-time.After(5 * time.Second):
			t.Fatal("SSE read timed out")
			return ""
		}
	}

	if got := readLine(); got != "event: keyframe" {
		t.Fatalf("first SSE line %q", got)
	}
	data := readLine()
	if !strings.HasPrefix(data, "data: ") {
		t.Fatalf("second SSE line %q", data)
	}
	var kf Keyframe
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &kf); err != nil {
		t.Fatal(err)
	}
	if len(kf.Mu) != 2 {
		t.Fatalf("streamed keyframe %+v", kf)
	}
	if got := readLine(); got != "" {
		t.Fatalf("SSE separator %q, want blank", got)
	}

	// A commit after connect arrives as a delta on the open stream.
	record(g, 1, []float64{1, 5})
	if got := readLine(); got != "event: delta" {
		t.Fatalf("next SSE event %q", got)
	}
}
