// Package gateway streams live optimizer state to operators over HTTP
// Server-Sent Events: prices, KKT residuals, capacity violations and
// admission/trace events, delta-encoded between periodic keyframes (the
// same keyframe/delta discipline as the dist transport's delta codec,
// PROTOCOL.md §6). It attaches to a run as an obs.Recorder (per-iteration
// samples) and obs.Sink (trace events), so any component an Observer can
// watch can be streamed without modification.
//
// Endpoints (see OBSERVABILITY.md and the EXPERIMENTS.md runbook):
//
//	/stream  SSE: one "keyframe" event on connect, then "delta" events,
//	         with "keyframe" resyncs after slow-consumer drops and every
//	         KeyframeEvery deltas as defense-in-depth; "trace" events
//	         carry obs.Event JSON.
//	/state   the current keyframe as plain JSON (for curl/polling).
//
// Backpressure is per connection: each subscriber has a bounded queue;
// when it overflows, events are dropped and the subscriber is marked lost
// until the next broadcast re-seeds it with a fresh keyframe, so a slow
// consumer sees a gap but never a stale or torn state.
package gateway

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"lla/internal/obs"
)

// Config tunes the gateway. The zero value is usable.
type Config struct {
	// KeyframeEvery forces a full keyframe every N delta events (default
	// 16, matching the dist delta codec's keyframe interval).
	KeyframeEvery int
	// QueueLen is the per-connection event queue capacity (default 64).
	QueueLen int
}

// Keyframe is the full streamed state: the most recent iteration sample's
// operator-facing fields. Seq orders events within the stream.
type Keyframe struct {
	Seq       uint64    `json:"seq"`
	Iteration int       `json:"iter"`
	Utility   float64   `json:"utility"`
	KKTMax    float64   `json:"kkt_max"`
	KKTMean   float64   `json:"kkt_mean"`
	MaxRes    float64   `json:"max_res_viol"`
	MaxPath   float64   `json:"max_path_viol"`
	Mu        []float64 `json:"mu"`
	ShareSums []float64 `json:"share_sums"`
	Avail     []float64 `json:"avail"`
}

// Delta carries one iteration's changes against the previous event:
// scalars ride every delta (they are a few bytes), vectors are encoded as
// parallel changed-index/value arrays. A consumer applies MuIdx[i] ->
// MuVal[i] onto its copy of the last keyframe state.
type Delta struct {
	Seq       uint64    `json:"seq"`
	Iteration int       `json:"iter"`
	Utility   float64   `json:"utility"`
	KKTMax    float64   `json:"kkt_max"`
	KKTMean   float64   `json:"kkt_mean"`
	MaxRes    float64   `json:"max_res_viol"`
	MaxPath   float64   `json:"max_path_viol"`
	MuIdx     []int     `json:"mu_i,omitempty"`
	MuVal     []float64 `json:"mu_v,omitempty"`
	ShareIdx  []int     `json:"share_i,omitempty"`
	ShareVal  []float64 `json:"share_v,omitempty"`
	AvailIdx  []int     `json:"avail_i,omitempty"`
	AvailVal  []float64 `json:"avail_v,omitempty"`
}

// Gateway is the streaming control-plane endpoint. Create with New, attach
// as Observer.Recorder and Observer.Trace (obs.MultiRecorder/MultiSink
// compose it with a JSONL trace), and serve Handler somewhere.
type Gateway struct {
	cfg Config
	m   *obs.GatewayMetrics

	mu       sync.Mutex
	subs     map[*subscriber]struct{}
	scratch  obs.IterationSample
	state    obs.IterationSample // last committed sample (deep copy)
	have     bool
	seq      uint64
	sinceKey int
	keyCache []byte // marshaled keyframe for keySeq
	keySeq   uint64
}

// New returns a gateway. reg may be nil; pass the run's registry to
// publish lla_gateway_* metrics.
func New(cfg Config, reg *obs.Registry) *Gateway {
	if cfg.KeyframeEvery <= 0 {
		cfg.KeyframeEvery = 16
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	g := &Gateway{cfg: cfg, subs: make(map[*subscriber]struct{}), m: &obs.GatewayMetrics{}}
	if reg != nil {
		g.m = obs.NewGatewayMetrics(reg)
	}
	return g
}

// subscriber is one /stream connection's bounded queue.
type subscriber struct {
	ch chan sseEvent
	// lost marks a subscriber whose queue overflowed; it receives nothing
	// until a keyframe fits again (guarded by Gateway.mu).
	lost bool
}

type sseEvent struct {
	name string
	data []byte
}

// Begin implements obs.Recorder.
func (g *Gateway) Begin(int) *obs.IterationSample { return &g.scratch }

// Commit implements obs.Recorder: it publishes the iteration as a delta
// (or a scheduled keyframe) to every subscriber.
func (g *Gateway) Commit(s *obs.IterationSample) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	keyframe := !g.have || g.sinceKey >= g.cfg.KeyframeEvery
	var name string
	var data []byte
	if keyframe {
		g.sinceKey = 0
		name, data = "keyframe", nil // marshaled after the state update
	} else {
		g.sinceKey++
		d := g.deltaLocked(s)
		raw, err := json.Marshal(d)
		if err != nil {
			return // unreachable: the sample fields are plain numbers
		}
		name, data = "delta", raw
	}
	g.copyState(s)
	g.have = true
	if keyframe {
		data = g.keyframeLocked()
		g.m.Keyframes.Inc()
	} else {
		g.m.Deltas.Inc()
	}
	g.broadcastLocked(name, data)
}

// Emit implements obs.Sink: trace events stream as "trace" SSE events.
// Lost subscribers skip them (trace is lossy under backpressure by design;
// the JSONL trace is the durable record).
func (g *Gateway) Emit(ev obs.Event) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.m.TraceEvents.Inc()
	g.broadcastLocked("trace", raw)
}

// copyState deep-copies the committed sample into g.state.
func (g *Gateway) copyState(s *obs.IterationSample) {
	mu, sums, avail := g.state.Mu, g.state.ShareSums, g.state.Avail
	g.state = *s
	g.state.Mu = append(mu[:0], s.Mu...)
	g.state.ShareSums = append(sums[:0], s.ShareSums...)
	g.state.Avail = append(avail[:0], s.Avail...)
	g.state.Gamma, g.state.Lambda, g.state.KKT = nil, nil, nil
}

// deltaLocked diffs the incoming sample against the last published state.
func (g *Gateway) deltaLocked(s *obs.IterationSample) *Delta {
	d := &Delta{
		Seq:       g.seq,
		Iteration: s.Iteration,
		Utility:   s.Utility,
		KKTMax:    s.KKTMax,
		KKTMean:   s.KKTMean,
		MaxRes:    s.MaxResourceViolation,
		MaxPath:   s.MaxPathViolationFrac,
	}
	d.MuIdx, d.MuVal = diff(g.state.Mu, s.Mu)
	d.ShareIdx, d.ShareVal = diff(g.state.ShareSums, s.ShareSums)
	d.AvailIdx, d.AvailVal = diff(g.state.Avail, s.Avail)
	return d
}

// diff returns the indexes and values where cur differs from prev
// (including positions past prev's length).
func diff(prev, cur []float64) ([]int, []float64) {
	var idx []int
	var val []float64
	for i, v := range cur {
		if i >= len(prev) || prev[i] != v {
			idx = append(idx, i)
			val = append(val, v)
		}
	}
	return idx, val
}

// keyframeLocked marshals the current state as a keyframe, cached per seq.
func (g *Gateway) keyframeLocked() []byte {
	if g.keyCache != nil && g.keySeq == g.seq {
		return g.keyCache
	}
	kf := Keyframe{
		Seq:       g.seq,
		Iteration: g.state.Iteration,
		Utility:   g.state.Utility,
		KKTMax:    g.state.KKTMax,
		KKTMean:   g.state.KKTMean,
		MaxRes:    g.state.MaxResourceViolation,
		MaxPath:   g.state.MaxPathViolationFrac,
		Mu:        g.state.Mu,
		ShareSums: g.state.ShareSums,
		Avail:     g.state.Avail,
	}
	raw, err := json.Marshal(kf)
	if err != nil {
		return nil
	}
	g.keyCache, g.keySeq = raw, g.seq
	return raw
}

// broadcastLocked fans one event out. Lost subscribers are offered a fresh
// keyframe instead: the keyframe carries the state this event produced, so
// a successful resync fully repairs the gap.
func (g *Gateway) broadcastLocked(name string, data []byte) {
	if data == nil {
		return
	}
	for sub := range g.subs {
		if sub.lost {
			if kf := g.keyframeLocked(); g.have && trySend(sub, "keyframe", kf) {
				sub.lost = false
				g.m.Resyncs.Inc()
			}
			continue
		}
		if !trySend(sub, name, data) {
			sub.lost = true
			g.m.Dropped.Inc()
		}
	}
}

// trySend enqueues without blocking.
func trySend(sub *subscriber, name string, data []byte) bool {
	select {
	case sub.ch <- sseEvent{name: name, data: data}:
		return true
	default:
		return false
	}
}

// subscribe registers a new consumer, seeding it with the current
// keyframe when one exists.
func (g *Gateway) subscribe() *subscriber {
	sub := &subscriber{ch: make(chan sseEvent, g.cfg.QueueLen)}
	g.mu.Lock()
	if g.have {
		trySend(sub, "keyframe", g.keyframeLocked())
	}
	g.subs[sub] = struct{}{}
	g.m.Connections.Set(float64(len(g.subs)))
	g.mu.Unlock()
	return sub
}

// unsubscribe removes a consumer.
func (g *Gateway) unsubscribe(sub *subscriber) {
	g.mu.Lock()
	delete(g.subs, sub)
	g.m.Connections.Set(float64(len(g.subs)))
	g.mu.Unlock()
}

// Handler returns the gateway's HTTP mux (/stream and /state).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stream", g.handleStream)
	mux.HandleFunc("/state", g.handleState)
	return mux
}

// handleStream serves the SSE event stream.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := g.subscribe()
	defer g.unsubscribe(sub)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-sub.ch:
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// handleState serves the current keyframe as plain JSON.
func (g *Gateway) handleState(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	var raw []byte
	if g.have {
		raw = append([]byte(nil), g.keyframeLocked()...)
	}
	g.mu.Unlock()
	if raw == nil {
		http.Error(w, "no state recorded yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// Serve starts the gateway server on addr (port 0 picks a free port) in a
// background goroutine, mirroring obs.Serve. Callers own shutdown via
// srv.Close.
func Serve(addr string, g *Gateway) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: g.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
