package lla

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lla/internal/wire"
)

// mdLink matches inline markdown links [text](target). Reference-style and
// autolinks are out of scope; the repo's docs use inline links.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks fails on dead relative links in any tracked markdown file:
// a link to a file or directory that does not exist means a doc rotted
// against the tree. External URLs and pure anchors are not checked.
func TestDocsLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — is the test running at the repo root?")
	}

	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}

// TestProtocolCoversFrameTypes keeps PROTOCOL.md honest: every frame type
// the codec can emit must appear in the spec by name and by its hex code.
// Adding a frame type without documenting it fails here.
func TestProtocolCoversFrameTypes(t *testing.T) {
	raw, err := os.ReadFile("PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	spec := string(raw)
	types := wire.FrameTypes()
	if len(types) == 0 {
		t.Fatal("wire.FrameTypes() is empty")
	}
	for name, code := range types {
		if !strings.Contains(spec, name) {
			t.Errorf("PROTOCOL.md does not mention frame type %s", name)
		}
		if hex := fmt.Sprintf("0x%02X", code); !strings.Contains(spec, hex) {
			t.Errorf("PROTOCOL.md does not document code %s (frame type %s)", hex, name)
		}
	}
}
